#include "qn/workspace.hpp"

#include "obs/span.hpp"

namespace latol::qn {

void SolverWorkspace::bind(const ClosedNetwork& net) {
  obs::Span span("qn.workspace.bind", "qn");
  span.arg("stations", static_cast<double>(net.num_stations()));
  span.arg("classes", static_cast<double>(net.num_classes()));
  classes_ = net.num_classes();
  stations_ = net.num_stations();
  const std::size_t C = classes_;
  const std::size_t M = stations_;

  first.assign(C + 1, 0);
  std::size_t slots = 0;
  for (std::size_t c = 0; c < C; ++c) {
    first[c] = slots;
    for (std::size_t m = 0; m < M; ++m) {
      if (net.visit_ratio(c, m) > 0.0) ++slots;
    }
  }
  first[C] = slots;

  station.resize(slots);
  visit.resize(slots);
  service.resize(slots);
  demand.resize(slots);
  seidmann_fixed.resize(slots);
  seidmann_rate.resize(slots);
  queueing.resize(slots);
  slot_class.resize(slots);
  population.resize(C);
  population_f.resize(C);
  total_demand.resize(C);

  std::size_t slot = 0;
  for (std::size_t c = 0; c < C; ++c) {
    population[c] = net.population(c);
    population_f[c] = static_cast<double>(population[c]);
    total_demand[c] = net.total_demand(c);
    for (std::size_t m = 0; m < M; ++m) {
      const double v = net.visit_ratio(c, m);
      if (v <= 0.0) continue;
      const double s = net.service_time(c, m);
      station[slot] = static_cast<std::uint32_t>(m);
      slot_class[slot] = static_cast<std::uint32_t>(c);
      visit[slot] = v;
      service[slot] = s;
      demand[slot] = v * s;
      const Station& st = net.station(m);
      if (st.kind == StationKind::kQueueing) {
        // The exact sub-expressions of the dense kernels' Seidmann form
        // `s*(servers-1)/servers + (s/servers)*(1+seen)` — precomputing
        // them does not change a single rounding (DESIGN.md §10).
        const auto servers = static_cast<double>(st.servers);
        seidmann_fixed[slot] = s * (servers - 1.0) / servers;
        seidmann_rate[slot] = s / servers;
        queueing[slot] = 1;
      } else {
        seidmann_fixed[slot] = 0.0;
        seidmann_rate[slot] = s;
        queueing[slot] = 0;
      }
      ++slot;
    }
  }

  // Station-major transpose. Walking slots in class order and appending to
  // each station's cursor leaves every station's list in increasing class
  // order, as the §10 determinism invariant requires.
  by_station_first.assign(M + 1, 0);
  for (std::size_t i = 0; i < slots; ++i) ++by_station_first[station[i] + 1];
  for (std::size_t m = 0; m < M; ++m) {
    by_station_first[m + 1] += by_station_first[m];
  }
  by_station_slot.resize(slots);
  {
    std::vector<std::size_t> cursor(by_station_first.begin(),
                                    by_station_first.end() - 1);
    for (std::size_t i = 0; i < slots; ++i) {
      by_station_slot[cursor[station[i]]++] = i;
    }
  }

  queue.assign(slots, 0.0);
  waiting.assign(slots, 0.0);
  station_total.assign(M, 0.0);
  throughput.assign(C, 0.0);
}

MvaSolution SolverWorkspace::scatter_solution() const {
  const std::size_t C = classes_;
  const std::size_t M = stations_;
  MvaSolution sol;
  sol.throughput.assign(C, 0.0);
  sol.waiting = util::Matrix(C, M, 0.0);
  sol.queue_length = util::Matrix(C, M, 0.0);
  sol.utilization.assign(M, 0.0);
  for (std::size_t c = 0; c < C; ++c) {
    sol.throughput[c] = throughput[c];
    for (std::size_t i = first[c]; i < first[c + 1]; ++i) {
      const std::size_t m = station[i];
      sol.waiting(c, m) = waiting[i];
      sol.queue_length(c, m) = queue[i];
      // Classes accumulate in increasing c for every station (the outer
      // loop order), replaying the dense utilization sum exactly.
      sol.utilization[m] += throughput[c] * demand[i];
    }
  }
  return sol;
}

}  // namespace latol::qn
