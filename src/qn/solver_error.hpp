// Structured solver failures.
//
// The iterative solvers historically threw bare std::runtime_error (or
// returned an unconverged iterate and hoped someone checked the flag).
// Callers that degrade gracefully — robust_solve(), the sweep engine, the
// CLI — need to *branch* on why a solve failed, so failures carry a
// machine-readable code alongside the human-readable message.
#pragma once

#include <stdexcept>
#include <string>

namespace latol::qn {

/// Why a solver could not produce a trustworthy solution.
enum class SolverErrorCode {
  /// The network failed validation (no customers, a populated class with
  /// zero total demand, ...) or the requested solver cannot apply to it
  /// at all (e.g. exact MVA on a non-product-form network).
  kInvalidNetwork,
  /// The fixed-point iterate moved away from its best point by more than
  /// the configured divergence factor — iterating longer will not help.
  kDiverged,
  /// The iteration budget was exhausted while the iterate was still
  /// making progress; a larger budget might converge.
  kIterationBudget,
  /// A NaN or overflow appeared in the iterate (pathological parameter
  /// ratios); the partial solution is meaningless.
  kNumerical,
  /// The caller's cancellation token expired (request deadline, point
  /// timeout, server drain) before a solution was reached. Terminal:
  /// robust_solve does not degrade past it — a deadline that already
  /// fired would only produce a late answer nobody is waiting for.
  kDeadlineExceeded,
  /// An open (Jackson/mixed) network has no steady state: some station's
  /// offered load implies utilization >= 1, so queues grow without bound.
  /// Raised by the open solvers before iterating — diverging slowly toward
  /// infinity would only dress the same failure up as kIterationBudget.
  kUnstable,
};

/// Stable lowercase identifier ("invalid-network", "diverged", ...) used
/// in reports, CSV columns, and log lines.
[[nodiscard]] constexpr const char* solver_error_name(SolverErrorCode code) {
  switch (code) {
    case SolverErrorCode::kInvalidNetwork:
      return "invalid-network";
    case SolverErrorCode::kDiverged:
      return "diverged";
    case SolverErrorCode::kIterationBudget:
      return "iteration-budget";
    case SolverErrorCode::kNumerical:
      return "numerical";
    case SolverErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case SolverErrorCode::kUnstable:
      return "unstable";
  }
  return "?";
}

/// A solver failure with a taxonomy code callers can branch on.
class SolverError : public std::runtime_error {
 public:
  SolverError(SolverErrorCode code, const std::string& message)
      : std::runtime_error(std::string(solver_error_name(code)) + ": " +
                           message),
        code_(code) {}

  [[nodiscard]] SolverErrorCode code() const { return code_; }

 private:
  SolverErrorCode code_;
};

}  // namespace latol::qn
