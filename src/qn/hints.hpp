// Warm-start hints for the approximate MVA solvers (DESIGN.md §15).
//
// A parameter sweep solves a long chain of nearly identical networks, and
// the AMVA/Linearizer fixed point moves slowly along the sweep axis — the
// converged queue lengths of one grid point (or a linear extrapolation
// from the previous two) are an excellent initial iterate for its lattice
// neighbor. Passing SolveHints to the solvers switches them to the *warm
// kernels*: the iterate is seeded from a caller-provided prior solution
// and the solve skips most of the cold descent.
//
// Determinism contract: a warm solve is a pure function of (network,
// options, hint). The sweep engine builds on exactly that — it derives
// every hint deterministically from the grid structure (per-row chains,
// seeded from results that are themselves pure functions of the chain),
// so sweep artifacts are byte-identical across worker counts, shard
// splits, streaming modes, and cache states (DESIGN.md §10, §15).
//
// What warm starting is NOT: bitwise equal to a cold solve of the same
// point. Different starting points stop at different iterates inside the
// tolerance ball (and even exact-stagnation orbits freeze ulps apart —
// the floating-point map's fixed "point" is a small region, not a
// point). Warm and cold answers agree to ~kappa x tolerance; raising
// `stagnation_budget` shrinks the gap to a few ulps (~1e-15 relative,
// measured in tests/qn/warm_start_test.cpp) by iterating both orbits to
// bitwise stagnation, at the cost of a longer convergence tail.
#pragma once

#include "qn/solution.hpp"

namespace latol::qn {

/// Warm-start request for solve_amva / solve_linearizer / robust_solve.
/// Selects the warm kernels (qn/hints.hpp); results are a pure function
/// of (network, options, hint) but are not bitwise comparable to the
/// plain overloads.
struct SolveHints {
  /// Solution of a nearby network to seed the iterate from; nullptr
  /// starts from the default demand-proportional guess (a "cold start
  /// under the warm kernel"). A prior whose shape does not match the
  /// network, or that contains non-finite or negative queue lengths, is
  /// ignored rather than rejected — hints are an optimization, never an
  /// input contract.
  const MvaSolution* prior = nullptr;
  /// Extra iterations allowed past the tolerance criterion to chase
  /// bitwise stagnation (or a canonicalized period-2 cycle) of the
  /// iterate. 0 — the default — stops at tolerance exactly like the
  /// plain kernels: fastest, hint-dependent at the ~kappa x tolerance
  /// level. Large values (a few hundred suffice in practice) make the
  /// answer insensitive to the hint down to a few ulps, for callers who
  /// want near-identical warm/cold numbers more than they want speed.
  long stagnation_budget = 0;
};

}  // namespace latol::qn
