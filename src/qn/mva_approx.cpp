#include "qn/mva_approx.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "qn/solver_error.hpp"
#include "qn/workspace.hpp"
#include "util/error.hpp"

namespace latol::qn {

MvaSolution solve_amva(const ClosedNetwork& net, const AmvaOptions& options,
                       SolverWorkspace& ws) {
  net.validate();
  LATOL_REQUIRE(options.tolerance > 0.0, "tolerance " << options.tolerance);
  LATOL_REQUIRE(options.damping > 0.0 && options.damping <= 1.0,
                "damping " << options.damping);
  LATOL_REQUIRE(options.divergence_factor > 0.0,
                "divergence_factor " << options.divergence_factor);
  LATOL_REQUIRE(options.divergence_window >= 0,
                "divergence_window " << options.divergence_window);

  ws.bind(net);
  const std::size_t C = ws.num_classes();

  // Initial guess: spread each class's population over its stations in
  // proportion to service demand (any positive spread converges; this one
  // starts near the answer for balanced networks).
  for (std::size_t c = 0; c < C; ++c) {
    const double total = ws.total_demand[c];
    if (ws.population[c] == 0 || total <= 0.0) continue;
    for (std::size_t i = ws.first[c]; i < ws.first[c + 1]; ++i) {
      ws.queue[i] = ws.population_f[c] * ws.demand[i] / total;
    }
  }

  // Per-station total queue lengths, maintained across iterations.
  // Classes accumulate in increasing c per station, matching the dense
  // station_queue() sum.
  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t i = ws.first[c]; i < ws.first[c + 1]; ++i) {
      ws.station_total[ws.station[i]] += ws.queue[i];
    }
  }

  bool converged = false;
  long iter = 0;
  double best_delta = std::numeric_limits<double>::infinity();
  for (; iter < options.max_iterations; ++iter) {
    if (options.cancel != nullptr && options.cancel->expired()) {
      throw SolverError(SolverErrorCode::kDeadlineExceeded,
                        "amva cancelled at iteration " + std::to_string(iter));
    }
    double delta = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      const long pop = ws.population[c];
      if (pop == 0) continue;
      const double nc = ws.population_f[c];
      const double self_seen = (nc - 1.0) / nc;
      const std::size_t begin = ws.first[c];
      const std::size_t end = ws.first[c + 1];

      // Residence times under the Schweitzer arrival approximation, with
      // the Seidmann multi-server terms folded into per-slot constants.
      double cycle = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        double w = ws.service[i];
        if (ws.queueing[i] != 0) {
          const double q = ws.queue[i];
          const double seen = ws.station_total[ws.station[i]] - q +
                              self_seen * q;
          w = ws.seidmann_fixed[i] + ws.seidmann_rate[i] * (1.0 + seen);
        }
        ws.waiting[i] = w;
        cycle += ws.visit[i] * w;
      }
      // A validated network has positive total demand for every populated
      // class, so a vanishing or non-finite cycle time here can only come
      // from numerical breakdown (overflow to inf, inf - inf, ...).
      if (!(cycle > 0.0) || !std::isfinite(cycle)) {
        throw SolverError(SolverErrorCode::kNumerical,
                          "class " + std::to_string(c) + " cycle time " +
                              std::to_string(cycle) + " at iteration " +
                              std::to_string(iter));
      }
      const double lambda = nc / cycle;
      ws.throughput[c] = lambda;

      // Queue-length update (with optional under-relaxation), keeping the
      // running per-station totals in sync so later classes in this sweep
      // see the newest estimates (Gauss–Seidel style, faster than Jacobi).
      for (std::size_t i = begin; i < end; ++i) {
        const double target = lambda * ws.visit[i] * ws.waiting[i];
        const double updated =
            ws.queue[i] + options.damping * (target - ws.queue[i]);
        if (!std::isfinite(updated)) {
          throw SolverError(SolverErrorCode::kNumerical,
                            "queue length of class " + std::to_string(c) +
                                " at station " +
                                std::to_string(ws.station[i]) +
                                " became non-finite at iteration " +
                                std::to_string(iter));
        }
        delta = std::max(delta, std::fabs(updated - ws.queue[i]));
        ws.station_total[ws.station[i]] += updated - ws.queue[i];
        ws.queue[i] = updated;
      }
    }
    if (options.trace != nullptr) options.trace->record(delta);
    if (!std::isfinite(delta)) {
      throw SolverError(SolverErrorCode::kNumerical,
                        "iterate delta became non-finite at iteration " +
                            std::to_string(iter));
    }
    if (delta < options.tolerance) {
      converged = true;
      ++iter;
      break;
    }
    if (iter >= options.divergence_window &&
        delta > options.divergence_factor * best_delta) {
      throw SolverError(SolverErrorCode::kDiverged,
                        "delta " + std::to_string(delta) + " exceeds " +
                            std::to_string(options.divergence_factor) +
                            " x best delta " + std::to_string(best_delta) +
                            " at iteration " + std::to_string(iter));
    }
    best_delta = std::min(best_delta, delta);
  }

  MvaSolution sol = ws.scatter_solution();
  sol.iterations = iter;
  sol.converged = converged;
  return sol;
}

MvaSolution solve_amva(const ClosedNetwork& net, const AmvaOptions& options) {
  // One arena per thread, reused across solves — a parameter sweep pays
  // for allocation on its first point only (DESIGN.md §10).
  thread_local SolverWorkspace workspace;
  return solve_amva(net, options, workspace);
}

}  // namespace latol::qn
