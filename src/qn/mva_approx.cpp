#include "qn/mva_approx.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "qn/solver_error.hpp"
#include "util/error.hpp"

namespace latol::qn {

MvaSolution solve_amva(const ClosedNetwork& net, const AmvaOptions& options) {
  net.validate();
  LATOL_REQUIRE(options.tolerance > 0.0, "tolerance " << options.tolerance);
  LATOL_REQUIRE(options.damping > 0.0 && options.damping <= 1.0,
                "damping " << options.damping);
  LATOL_REQUIRE(options.divergence_factor > 0.0,
                "divergence_factor " << options.divergence_factor);
  LATOL_REQUIRE(options.divergence_window >= 0,
                "divergence_window " << options.divergence_window);

  const std::size_t C = net.num_classes();
  const std::size_t M = net.num_stations();

  MvaSolution sol;
  sol.throughput.assign(C, 0.0);
  sol.waiting = util::Matrix(C, M, 0.0);
  sol.queue_length = util::Matrix(C, M, 0.0);
  sol.utilization.assign(M, 0.0);

  // Initial guess: spread each class's population over its stations in
  // proportion to service demand (any positive spread converges; this one
  // starts near the answer for balanced networks).
  for (std::size_t c = 0; c < C; ++c) {
    const double total = net.total_demand(c);
    if (net.population(c) == 0 || total <= 0.0) continue;
    for (std::size_t m = 0; m < M; ++m) {
      sol.queue_length(c, m) =
          static_cast<double>(net.population(c)) * net.demand(c, m) / total;
    }
  }

  // Per-station total queue lengths, maintained across iterations.
  std::vector<double> station_total(M, 0.0);
  auto refresh_totals = [&] {
    for (std::size_t m = 0; m < M; ++m) station_total[m] = sol.station_queue(m);
  };
  refresh_totals();

  bool converged = false;
  long iter = 0;
  double best_delta = std::numeric_limits<double>::infinity();
  for (; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      const long pop = net.population(c);
      if (pop == 0) continue;
      const double nc = static_cast<double>(pop);

      // Residence times under the Schweitzer arrival approximation.
      double cycle = 0.0;
      for (std::size_t m = 0; m < M; ++m) {
        const double v = net.visit_ratio(c, m);
        if (v <= 0.0) {
          sol.waiting(c, m) = 0.0;
          continue;
        }
        const double s = net.service_time(c, m);
        double w = s;
        if (net.station(m).kind == StationKind::kQueueing) {
          const double seen = station_total[m] - sol.queue_length(c, m) +
                              ((nc - 1.0) / nc) * sol.queue_length(c, m);
          const auto servers = static_cast<double>(net.station(m).servers);
          // Seidmann approximation for multi-server stations: a fixed
          // delay of s(m-1)/m plus a single server of speed m. Exact for
          // servers == 1.
          w = s * (servers - 1.0) / servers +
              (s / servers) * (1.0 + seen);
        }
        sol.waiting(c, m) = w;
        cycle += v * w;
      }
      // A validated network has positive total demand for every populated
      // class, so a vanishing or non-finite cycle time here can only come
      // from numerical breakdown (overflow to inf, inf - inf, ...).
      if (!(cycle > 0.0) || !std::isfinite(cycle)) {
        throw SolverError(SolverErrorCode::kNumerical,
                          "class " + std::to_string(c) + " cycle time " +
                              std::to_string(cycle) + " at iteration " +
                              std::to_string(iter));
      }
      const double lambda = nc / cycle;
      sol.throughput[c] = lambda;

      // Queue-length update (with optional under-relaxation), keeping the
      // running per-station totals in sync so later classes in this sweep
      // see the newest estimates (Gauss–Seidel style, faster than Jacobi).
      for (std::size_t m = 0; m < M; ++m) {
        const double target = lambda * net.visit_ratio(c, m) * sol.waiting(c, m);
        const double updated = sol.queue_length(c, m) +
                               options.damping * (target - sol.queue_length(c, m));
        if (!std::isfinite(updated)) {
          throw SolverError(SolverErrorCode::kNumerical,
                            "queue length of class " + std::to_string(c) +
                                " at station " + std::to_string(m) +
                                " became non-finite at iteration " +
                                std::to_string(iter));
        }
        delta = std::max(delta, std::fabs(updated - sol.queue_length(c, m)));
        station_total[m] += updated - sol.queue_length(c, m);
        sol.queue_length(c, m) = updated;
      }
    }
    if (options.trace != nullptr) options.trace->record(delta);
    if (!std::isfinite(delta)) {
      throw SolverError(SolverErrorCode::kNumerical,
                        "iterate delta became non-finite at iteration " +
                            std::to_string(iter));
    }
    if (delta < options.tolerance) {
      converged = true;
      ++iter;
      break;
    }
    if (iter >= options.divergence_window &&
        delta > options.divergence_factor * best_delta) {
      throw SolverError(SolverErrorCode::kDiverged,
                        "delta " + std::to_string(delta) + " exceeds " +
                            std::to_string(options.divergence_factor) +
                            " x best delta " + std::to_string(best_delta) +
                            " at iteration " + std::to_string(iter));
    }
    best_delta = std::min(best_delta, delta);
  }

  sol.iterations = iter;
  sol.converged = converged;
  for (std::size_t m = 0; m < M; ++m) {
    double u = 0.0;
    for (std::size_t c = 0; c < C; ++c)
      u += sol.throughput[c] * net.demand(c, m);
    sol.utilization[m] = u;
  }
  return sol;
}

}  // namespace latol::qn
