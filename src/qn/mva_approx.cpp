#include "qn/mva_approx.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "qn/solver_error.hpp"
#include "qn/workspace.hpp"
#include "util/error.hpp"

namespace latol::qn {

namespace {

// A prior is usable as a warm seed only when it matches the network shape
// and every visited slot holds a finite, non-negative queue length; a
// mismatched or polluted prior is silently ignored (hints are an
// optimization, never an input contract — qn/hints.hpp).
bool seed_queue_from_prior(SolverWorkspace& ws, const MvaSolution* prior) {
  if (prior == nullptr) return false;
  if (prior->queue_length.rows() != ws.num_classes() ||
      prior->queue_length.cols() != ws.num_stations()) {
    return false;
  }
  for (std::size_t c = 0; c < ws.num_classes(); ++c) {
    if (ws.population[c] == 0 || ws.total_demand[c] <= 0.0) continue;
    for (std::size_t i = ws.first[c]; i < ws.first[c + 1]; ++i) {
      const double q = prior->queue_length(c, ws.station[i]);
      if (!std::isfinite(q) || q < 0.0) return false;
    }
  }
  for (std::size_t c = 0; c < ws.num_classes(); ++c) {
    if (ws.population[c] == 0 || ws.total_demand[c] <= 0.0) continue;
    for (std::size_t i = ws.first[c]; i < ws.first[c + 1]; ++i) {
      ws.queue[i] = prior->queue_length(c, ws.station[i]);
    }
  }
  return true;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b,
                   std::size_t n) {
  return a.size() >= n && b.size() >= n &&
         std::memcmp(a.data(), b.data(), n * sizeof(double)) == 0;
}

}  // namespace

MvaSolution solve_amva(const ClosedNetwork& net, const AmvaOptions& options,
                       SolverWorkspace& ws) {
  net.validate();
  LATOL_REQUIRE(options.tolerance > 0.0, "tolerance " << options.tolerance);
  LATOL_REQUIRE(options.damping > 0.0 && options.damping <= 1.0,
                "damping " << options.damping);
  LATOL_REQUIRE(options.divergence_factor > 0.0,
                "divergence_factor " << options.divergence_factor);
  LATOL_REQUIRE(options.divergence_window >= 0,
                "divergence_window " << options.divergence_window);

  ws.bind(net);
  const std::size_t C = ws.num_classes();

  // Initial guess: spread each class's population over its stations in
  // proportion to service demand (any positive spread converges; this one
  // starts near the answer for balanced networks).
  for (std::size_t c = 0; c < C; ++c) {
    const double total = ws.total_demand[c];
    if (ws.population[c] == 0 || total <= 0.0) continue;
    for (std::size_t i = ws.first[c]; i < ws.first[c + 1]; ++i) {
      ws.queue[i] = ws.population_f[c] * ws.demand[i] / total;
    }
  }

  // Per-station total queue lengths, maintained across iterations.
  // Classes accumulate in increasing c per station, matching the dense
  // station_queue() sum.
  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t i = ws.first[c]; i < ws.first[c + 1]; ++i) {
      ws.station_total[ws.station[i]] += ws.queue[i];
    }
  }

  bool converged = false;
  long iter = 0;
  double best_delta = std::numeric_limits<double>::infinity();
  for (; iter < options.max_iterations; ++iter) {
    if (options.cancel != nullptr && options.cancel->expired()) {
      throw SolverError(SolverErrorCode::kDeadlineExceeded,
                        "amva cancelled at iteration " + std::to_string(iter));
    }
    double delta = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      const long pop = ws.population[c];
      if (pop == 0) continue;
      const double nc = ws.population_f[c];
      const double self_seen = (nc - 1.0) / nc;
      const std::size_t begin = ws.first[c];
      const std::size_t end = ws.first[c + 1];

      // Residence times under the Schweitzer arrival approximation, with
      // the Seidmann multi-server terms folded into per-slot constants.
      double cycle = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        double w = ws.service[i];
        if (ws.queueing[i] != 0) {
          const double q = ws.queue[i];
          const double seen = ws.station_total[ws.station[i]] - q +
                              self_seen * q;
          w = ws.seidmann_fixed[i] + ws.seidmann_rate[i] * (1.0 + seen);
        }
        ws.waiting[i] = w;
        cycle += ws.visit[i] * w;
      }
      // A validated network has positive total demand for every populated
      // class, so a vanishing or non-finite cycle time here can only come
      // from numerical breakdown (overflow to inf, inf - inf, ...).
      if (!(cycle > 0.0) || !std::isfinite(cycle)) {
        throw SolverError(SolverErrorCode::kNumerical,
                          "class " + std::to_string(c) + " cycle time " +
                              std::to_string(cycle) + " at iteration " +
                              std::to_string(iter));
      }
      const double lambda = nc / cycle;
      ws.throughput[c] = lambda;

      // Queue-length update (with optional under-relaxation), keeping the
      // running per-station totals in sync so later classes in this sweep
      // see the newest estimates (Gauss–Seidel style, faster than Jacobi).
      for (std::size_t i = begin; i < end; ++i) {
        const double target = lambda * ws.visit[i] * ws.waiting[i];
        const double updated =
            ws.queue[i] + options.damping * (target - ws.queue[i]);
        if (!std::isfinite(updated)) {
          throw SolverError(SolverErrorCode::kNumerical,
                            "queue length of class " + std::to_string(c) +
                                " at station " +
                                std::to_string(ws.station[i]) +
                                " became non-finite at iteration " +
                                std::to_string(iter));
        }
        delta = std::max(delta, std::fabs(updated - ws.queue[i]));
        ws.station_total[ws.station[i]] += updated - ws.queue[i];
        ws.queue[i] = updated;
      }
    }
    if (options.trace != nullptr) options.trace->record(delta);
    if (!std::isfinite(delta)) {
      throw SolverError(SolverErrorCode::kNumerical,
                        "iterate delta became non-finite at iteration " +
                            std::to_string(iter));
    }
    if (delta < options.tolerance) {
      converged = true;
      ++iter;
      break;
    }
    if (iter >= options.divergence_window &&
        delta > options.divergence_factor * best_delta) {
      throw SolverError(SolverErrorCode::kDiverged,
                        "delta " + std::to_string(delta) + " exceeds " +
                            std::to_string(options.divergence_factor) +
                            " x best delta " + std::to_string(best_delta) +
                            " at iteration " + std::to_string(iter));
    }
    best_delta = std::min(best_delta, delta);
  }

  MvaSolution sol = ws.scatter_solution();
  sol.iterations = iter;
  sol.converged = converged;
  return sol;
}

MvaSolution solve_amva(const ClosedNetwork& net, const AmvaOptions& options) {
  // One arena per thread, reused across solves — a parameter sweep pays
  // for allocation on its first point only (DESIGN.md §10).
  thread_local SolverWorkspace workspace;
  return solve_amva(net, options, workspace);
}

MvaSolution solve_amva(const ClosedNetwork& net, const AmvaOptions& options,
                       SolverWorkspace& ws, const SolveHints& hints) {
  net.validate();
  LATOL_REQUIRE(options.tolerance > 0.0, "tolerance " << options.tolerance);
  LATOL_REQUIRE(options.damping > 0.0 && options.damping <= 1.0,
                "damping " << options.damping);
  LATOL_REQUIRE(options.divergence_factor > 0.0,
                "divergence_factor " << options.divergence_factor);
  LATOL_REQUIRE(options.divergence_window >= 0,
                "divergence_window " << options.divergence_window);

  ws.bind(net);
  const std::size_t C = ws.num_classes();
  const std::size_t S = ws.num_stations();
  const std::size_t slots = ws.num_slots();

  if (!seed_queue_from_prior(ws, hints.prior)) {
    for (std::size_t c = 0; c < C; ++c) {
      const double total = ws.total_demand[c];
      if (ws.population[c] == 0 || total <= 0.0) continue;
      for (std::size_t i = ws.first[c]; i < ws.first[c + 1]; ++i) {
        ws.queue[i] = ws.population_f[c] * ws.demand[i] / total;
      }
    }
  }

  // Last two iterates, for stagnation / 2-cycle detection. Reused across
  // solves for the same reason the default workspace is thread_local.
  thread_local std::vector<double> prev1;
  thread_local std::vector<double> prev2;
  prev1.clear();
  prev2.clear();

  bool converged = false;
  bool tol_met = false;
  long stagnation_used = 0;
  long iter = 0;
  double best_delta = std::numeric_limits<double>::infinity();
  for (; iter < options.max_iterations; ++iter) {
    if (options.cancel != nullptr && options.cancel->expired()) {
      throw SolverError(SolverErrorCode::kDeadlineExceeded,
                        "amva cancelled at iteration " + std::to_string(iter));
    }
    prev2.swap(prev1);
    prev1.assign(ws.queue.begin(), ws.queue.end());

    // Unlike the plain kernel, which carries station_total across
    // iterations incrementally, the warm kernel recomputes it from the
    // queue vector at the top of every sweep: the iteration map is then a
    // pure function of the iterate, so orbits started from different
    // hints merge bitwise once they meet — what lets a positive
    // stagnation_budget drive differently-seeded solves to near-identical
    // answers (qn/hints.hpp).
    std::fill(ws.station_total.begin(), ws.station_total.begin() + S, 0.0);
    for (std::size_t c = 0; c < C; ++c) {
      for (std::size_t i = ws.first[c]; i < ws.first[c + 1]; ++i) {
        ws.station_total[ws.station[i]] += ws.queue[i];
      }
    }

    double delta = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      const long pop = ws.population[c];
      if (pop == 0) continue;
      const double nc = ws.population_f[c];
      const double self_seen = (nc - 1.0) / nc;
      const std::size_t begin = ws.first[c];
      const std::size_t end = ws.first[c + 1];

      double cycle = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        double w = ws.service[i];
        if (ws.queueing[i] != 0) {
          const double q = ws.queue[i];
          const double seen = ws.station_total[ws.station[i]] - q +
                              self_seen * q;
          w = ws.seidmann_fixed[i] + ws.seidmann_rate[i] * (1.0 + seen);
        }
        ws.waiting[i] = w;
        cycle += ws.visit[i] * w;
      }
      if (!(cycle > 0.0) || !std::isfinite(cycle)) {
        throw SolverError(SolverErrorCode::kNumerical,
                          "class " + std::to_string(c) + " cycle time " +
                              std::to_string(cycle) + " at iteration " +
                              std::to_string(iter));
      }
      const double lambda = nc / cycle;
      ws.throughput[c] = lambda;

      for (std::size_t i = begin; i < end; ++i) {
        const double target = lambda * ws.visit[i] * ws.waiting[i];
        const double updated =
            ws.queue[i] + options.damping * (target - ws.queue[i]);
        if (!std::isfinite(updated)) {
          throw SolverError(SolverErrorCode::kNumerical,
                            "queue length of class " + std::to_string(c) +
                                " at station " +
                                std::to_string(ws.station[i]) +
                                " became non-finite at iteration " +
                                std::to_string(iter));
        }
        delta = std::max(delta, std::fabs(updated - ws.queue[i]));
        ws.station_total[ws.station[i]] += updated - ws.queue[i];
        ws.queue[i] = updated;
      }
    }
    if (options.trace != nullptr) options.trace->record(delta);
    if (!std::isfinite(delta)) {
      throw SolverError(SolverErrorCode::kNumerical,
                        "iterate delta became non-finite at iteration " +
                            std::to_string(iter));
    }
    if (delta < options.tolerance) tol_met = true;
    if (tol_met) {
      // With a positive stagnation budget, iterate past the user
      // tolerance until the floating-point map freezes. A bitwise fixed
      // point and a period-2 flip-flop are the only ways a deterministic
      // contracting map can end; canonicalize the flip-flop to its
      // bitwise-lexicographically-smaller point so both phases of the
      // cycle report the same answer.
      if (delta == 0.0) {
        converged = true;
        ++iter;
        break;
      }
      if (bitwise_equal(ws.queue, prev2, slots)) {
        if (std::memcmp(prev1.data(), ws.queue.data(),
                        slots * sizeof(double)) < 0) {
          std::copy(prev1.begin(), prev1.begin() + slots, ws.queue.begin());
        }
        converged = true;
        ++iter;
        break;
      }
      if (++stagnation_used > hints.stagnation_budget) {
        // Budget exhausted (immediately, for the default budget of 0):
        // stop at the tolerance-level iterate like the plain kernel.
        converged = true;
        ++iter;
        break;
      }
    } else {
      if (iter >= options.divergence_window &&
          delta > options.divergence_factor * best_delta) {
        throw SolverError(SolverErrorCode::kDiverged,
                          "delta " + std::to_string(delta) + " exceeds " +
                              std::to_string(options.divergence_factor) +
                              " x best delta " + std::to_string(best_delta) +
                              " at iteration " + std::to_string(iter));
      }
      best_delta = std::min(best_delta, delta);
    }
  }
  converged = converged || tol_met;

  // Canonical output pass: the Gauss–Seidel sweep above leaves waiting
  // times computed against mixed old/new station totals, which would leak
  // the orbit's history into the output. Re-derive waiting and throughput
  // from the final queue vector alone (Jacobi-style, one pass, no queue
  // update) so every reported field is a pure function of Q*.
  std::fill(ws.station_total.begin(), ws.station_total.begin() + S, 0.0);
  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t i = ws.first[c]; i < ws.first[c + 1]; ++i) {
      ws.station_total[ws.station[i]] += ws.queue[i];
    }
  }
  for (std::size_t c = 0; c < C; ++c) {
    if (ws.population[c] == 0) continue;
    const double nc = ws.population_f[c];
    const double self_seen = (nc - 1.0) / nc;
    double cycle = 0.0;
    for (std::size_t i = ws.first[c]; i < ws.first[c + 1]; ++i) {
      double w = ws.service[i];
      if (ws.queueing[i] != 0) {
        const double q = ws.queue[i];
        const double seen =
            ws.station_total[ws.station[i]] - q + self_seen * q;
        w = ws.seidmann_fixed[i] + ws.seidmann_rate[i] * (1.0 + seen);
      }
      ws.waiting[i] = w;
      cycle += ws.visit[i] * w;
    }
    if (!(cycle > 0.0) || !std::isfinite(cycle)) {
      throw SolverError(SolverErrorCode::kNumerical,
                        "class " + std::to_string(c) + " cycle time " +
                            std::to_string(cycle) + " in output pass");
    }
    ws.throughput[c] = nc / cycle;
  }

  MvaSolution sol = ws.scatter_solution();
  sol.iterations = iter;
  sol.converged = converged;
  return sol;
}

MvaSolution solve_amva(const ClosedNetwork& net, const AmvaOptions& options,
                       const SolveHints& hints) {
  thread_local SolverWorkspace workspace;
  return solve_amva(net, options, workspace, hints);
}

}  // namespace latol::qn
