// Approximate mean value analysis (Bard–Schweitzer fixed point).
//
// This is the algorithm of the paper's Figure 3. For each class i the
// arrival theorem is approximated by estimating the queue seen by a newly
// arriving class-i customer from the equilibrium queue lengths at full
// population N:
//
//   n_m(N - 1_i) ~= ((N_i - 1) / N_i) * n_{i,m}(N) + sum_{j != i} n_{j,m}(N)
//   w_{i,m}(N)    = s_{i,m} * (1 + n_m(N - 1_i))          (FCFS queueing)
//                 = s_{i,m}                                (delay)
//   lambda_i(N)   = N_i / sum_m v_{i,m} w_{i,m}(N)
//   n_{i,m}(N)    = lambda_i(N) * v_{i,m} * w_{i,m}(N)
//
// iterated to a fixed point. Cost per iteration is O(classes x stations);
// the fixed point is typically reached in tens of iterations, which is why
// the paper can sweep hundred-processor systems.
#pragma once

#include "obs/trace.hpp"
#include "qn/hints.hpp"
#include "qn/network.hpp"
#include "qn/solution.hpp"
#include "util/cancel.hpp"

namespace latol::qn {

class SolverWorkspace;

/// Options for the AMVA fixed-point iteration.
struct AmvaOptions {
  /// Convergence threshold on the max absolute change of any per-class
  /// station queue length between successive iterations.
  double tolerance = 1e-10;
  /// Iteration budget; exceeding it marks the solution unconverged.
  long max_iterations = 200000;
  /// Under-relaxation factor in (0, 1]: 1 = plain fixed point. Values
  /// below 1 damp the (rare) oscillating cases.
  double damping = 1.0;
  /// Divergence guard: once at least `divergence_window` iterations have
  /// run, an iteration whose delta exceeds `divergence_factor` x the best
  /// (smallest) delta seen so far aborts with SolverError(kDiverged) — a
  /// contracting fixed point never backslides by orders of magnitude, so
  /// iterating further would only burn the budget on garbage.
  double divergence_factor = 1e6;
  long divergence_window = 32;
  /// Ask robust_solve()/core::analyze() to record per-iteration residual
  /// traces (DESIGN.md §9). Part of the solve-cache key — traced and
  /// untraced results never share a cache entry.
  bool record_trace = false;
  /// Optional convergence sink: when non-null, solve_amva records each
  /// iteration's delta into it (caller-owned; survives a solver throw, so
  /// a diverging solve leaves a partial trace behind for diagnosis).
  obs::ConvergenceTrace* trace = nullptr;
  /// Optional cooperative cancellation: when non-null, the fixed point
  /// checks the token once per iteration and aborts with
  /// SolverError(kDeadlineExceeded) once it expires. Not part of the
  /// solve-cache key (a deadline never changes the numbers, only whether
  /// they arrive); nullptr costs one predicted branch per iteration.
  const util::CancelToken* cancel = nullptr;
};

/// Solve `net` with Bard–Schweitzer AMVA. Classes with zero population get
/// zero throughput and queue lengths. Throws InvalidArgument on an invalid
/// network and SolverError on a NaN/overflowed (kNumerical) or diverging
/// (kDiverged) iterate; never throws on plain budget exhaustion (check
/// `converged` — robust_solve classifies that as kIterationBudget).
[[nodiscard]] MvaSolution solve_amva(const ClosedNetwork& net,
                                     const AmvaOptions& options = {});

/// Same solve, but running in a caller-provided SolverWorkspace (see
/// qn/workspace.hpp) instead of the per-thread default arena. Use when
/// sweeping many networks to control exactly which allocations are reused;
/// results are bit-identical to the default overload.
[[nodiscard]] MvaSolution solve_amva(const ClosedNetwork& net,
                                     const AmvaOptions& options,
                                     SolverWorkspace& ws);

/// Warm-kernel solve (qn/hints.hpp, DESIGN.md §15): seed the iterate from
/// `hints.prior` (when usable) and converge from there; the reported
/// solution is re-derived from the final iterate in one pure evaluation
/// pass. A deterministic pure function of (net, options, hints) — the
/// byte-determinism the sweep engine builds on — but NOT bitwise equal to
/// the plain overloads or to a differently-hinted solve (they stop at
/// different iterates inside the tolerance ball). Error behavior matches
/// the plain overloads.
[[nodiscard]] MvaSolution solve_amva(const ClosedNetwork& net,
                                     const AmvaOptions& options,
                                     SolverWorkspace& ws,
                                     const SolveHints& hints);

/// Warm-kernel solve in the per-thread default arena.
[[nodiscard]] MvaSolution solve_amva(const ClosedNetwork& net,
                                     const AmvaOptions& options,
                                     const SolveHints& hints);

}  // namespace latol::qn
