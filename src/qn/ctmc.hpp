// Brute-force continuous-time Markov chain solver for small closed
// networks: exact ground truth for validating both MVA solvers.
//
// States are occupancy matrices (customers of class c at station m). For
// queueing stations with class-independent exponential service the count
// process under random-order service is Markov and has the same stationary
// law as FCFS (both are product-form); we therefore model the departing
// class as chosen uniformly among queued customers. Delay stations serve
// every customer in parallel at its own per-class rate.
//
// The paper itself remarks that state-space solutions are computationally
// intensive (a 2-processor, 10-thread system has ~63k states) — which is
// exactly why it uses AMVA; this module reproduces that "accurate but
// expensive" baseline for test-sized systems.
#pragma once

#include <cstddef>

#include "qn/network.hpp"
#include "qn/routing.hpp"
#include "qn/solution.hpp"

namespace latol::qn {

/// Options for the CTMC solve.
struct CtmcOptions {
  /// Hard cap on the number of enumerated states (dense solve is O(S^3)).
  std::size_t max_states = 20000;
};

/// Number of states the CTMC for `net` would have (product over classes of
/// compositions of N_c into num_stations parts).
[[nodiscard]] std::size_t ctmc_state_count(const ClosedNetwork& net);

/// Solve the stationary distribution exactly and derive the same measures
/// the MVA solvers report. `net` must satisfy the product-form service
/// conditions (checked). Throughput of class c counts departures from its
/// reference station.
[[nodiscard]] MvaSolution solve_ctmc(const ClosedNetwork& net,
                                     const RoutedClosedNetwork& routed,
                                     const CtmcOptions& options = {});

}  // namespace latol::qn
