#include "qn/mva_linearizer.hpp"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "qn/solver_error.hpp"
#include "util/error.hpp"

namespace latol::qn {

namespace {

/// Queue-length fractions F(c, m) = n_{c,m} / N_c from one Core solve,
/// plus the full solution at that population.
struct CoreResult {
  util::Matrix fractions;  // C x M
  MvaSolution solution;
  bool converged = true;
  long iterations = 0;
};

/// One Schweitzer-style fixed point at population `pop`, using the
/// correction terms D(i, m, j): the queue of class i at station m seen by
/// an arriving class-j customer is (pop_i - delta_ij)(F_{i,m} + D_{i,m,j}).
CoreResult solve_core(const ClosedNetwork& net, const std::vector<long>& pop,
                      const std::vector<util::Matrix>& corrections,
                      const LinearizerOptions& options) {
  const std::size_t C = net.num_classes();
  const std::size_t M = net.num_stations();

  CoreResult out;
  out.fractions = util::Matrix(C, M, 0.0);
  out.solution.throughput.assign(C, 0.0);
  out.solution.waiting = util::Matrix(C, M, 0.0);
  out.solution.queue_length = util::Matrix(C, M, 0.0);
  out.solution.utilization.assign(M, 0.0);

  // Initialize fractions proportional to demand.
  for (std::size_t c = 0; c < C; ++c) {
    const double total = net.total_demand(c);
    if (pop[c] == 0 || total <= 0.0) continue;
    for (std::size_t m = 0; m < M; ++m)
      out.fractions(c, m) = net.demand(c, m) / total;
  }

  bool converged = false;
  long iter = 0;
  double best_delta = std::numeric_limits<double>::infinity();
  for (; iter < options.max_core_iterations; ++iter) {
    double delta = 0.0;
    for (std::size_t j = 0; j < C; ++j) {
      if (pop[j] == 0) continue;
      const auto nj = static_cast<double>(pop[j]);
      double cycle = 0.0;
      for (std::size_t m = 0; m < M; ++m) {
        const double v = net.visit_ratio(j, m);
        if (v <= 0.0) {
          out.solution.waiting(j, m) = 0.0;
          continue;
        }
        double w = net.service_time(j, m);
        if (net.station(m).kind == StationKind::kQueueing) {
          double seen = 0.0;
          for (std::size_t i = 0; i < C; ++i) {
            if (pop[i] == 0) continue;
            const double ni =
                static_cast<double>(pop[i]) - (i == j ? 1.0 : 0.0);
            if (ni <= 0.0) continue;
            seen += ni * (out.fractions(i, m) + corrections[i](m, j));
          }
          const double s = net.service_time(j, m);
          const auto servers = static_cast<double>(net.station(m).servers);
          // Seidmann approximation (exact for servers == 1).
          w = s * (servers - 1.0) / servers +
              (s / servers) * (1.0 + std::max(0.0, seen));
        }
        out.solution.waiting(j, m) = w;
        cycle += v * w;
      }
      // With a validated network a vanishing or non-finite cycle time can
      // only be numerical breakdown (see solve_amva).
      if (!(cycle > 0.0) || !std::isfinite(cycle)) {
        throw SolverError(SolverErrorCode::kNumerical,
                          "class " + std::to_string(j) + " cycle time " +
                              std::to_string(cycle) + " at core iteration " +
                              std::to_string(iter));
      }
      const double lambda = nj / cycle;
      out.solution.throughput[j] = lambda;
      for (std::size_t m = 0; m < M; ++m) {
        const double q =
            lambda * net.visit_ratio(j, m) * out.solution.waiting(j, m);
        if (!std::isfinite(q)) {
          throw SolverError(SolverErrorCode::kNumerical,
                            "queue length of class " + std::to_string(j) +
                                " at station " + std::to_string(m) +
                                " became non-finite at core iteration " +
                                std::to_string(iter));
        }
        out.solution.queue_length(j, m) = q;
        const double f = q / nj;
        delta = std::max(delta, std::fabs(f - out.fractions(j, m)));
        out.fractions(j, m) = f;
      }
    }
    if (options.trace != nullptr) options.trace->record(delta);
    if (!std::isfinite(delta)) {
      throw SolverError(SolverErrorCode::kNumerical,
                        "core iterate delta became non-finite at iteration " +
                            std::to_string(iter));
    }
    if (delta < options.tolerance) {
      converged = true;
      ++iter;
      break;
    }
    if (iter >= options.divergence_window &&
        delta > options.divergence_factor * best_delta) {
      throw SolverError(SolverErrorCode::kDiverged,
                        "core delta " + std::to_string(delta) + " exceeds " +
                            std::to_string(options.divergence_factor) +
                            " x best delta " + std::to_string(best_delta) +
                            " at iteration " + std::to_string(iter));
    }
    best_delta = std::min(best_delta, delta);
  }
  out.converged = converged;
  out.iterations = iter;
  for (std::size_t m = 0; m < M; ++m) {
    double u = 0.0;
    for (std::size_t c = 0; c < C; ++c)
      u += out.solution.throughput[c] * net.demand(c, m);
    out.solution.utilization[m] = u;
  }
  return out;
}

}  // namespace

MvaSolution solve_linearizer(const ClosedNetwork& net,
                             const LinearizerOptions& options) {
  net.validate();
  LATOL_REQUIRE(options.outer_iterations >= 1,
                "outer_iterations " << options.outer_iterations);
  LATOL_REQUIRE(options.divergence_factor > 0.0,
                "divergence_factor " << options.divergence_factor);
  LATOL_REQUIRE(options.divergence_window >= 0,
                "divergence_window " << options.divergence_window);
  const std::size_t C = net.num_classes();
  const std::size_t M = net.num_stations();

  std::vector<long> full(C);
  for (std::size_t c = 0; c < C; ++c) full[c] = net.population(c);

  // corrections[i](m, j) = D_{i,m,j}; start with the Schweitzer assumption
  // D = 0 (removing a customer leaves fractions unchanged).
  std::vector<util::Matrix> corrections(C, util::Matrix(M, C, 0.0));

  CoreResult at_full = solve_core(net, full, corrections, options);
  long total_iterations = at_full.iterations;
  for (int outer = 0; outer < options.outer_iterations; ++outer) {
    // Solve each reduced population N - 1_j with the current corrections.
    std::vector<CoreResult> reduced;
    reduced.reserve(C);
    for (std::size_t j = 0; j < C; ++j) {
      std::vector<long> pop = full;
      if (pop[j] > 0) pop[j] -= 1;
      reduced.push_back(solve_core(net, pop, corrections, options));
      total_iterations += reduced.back().iterations;
    }
    // Update the correction terms from the observed fraction shifts.
    for (std::size_t i = 0; i < C; ++i) {
      for (std::size_t m = 0; m < M; ++m) {
        for (std::size_t j = 0; j < C; ++j) {
          corrections[i](m, j) =
              reduced[j].fractions(i, m) - at_full.fractions(i, m);
        }
      }
    }
    at_full = solve_core(net, full, corrections, options);
    total_iterations += at_full.iterations;
  }

  MvaSolution sol = std::move(at_full.solution);
  sol.converged = at_full.converged;
  sol.iterations = total_iterations;
  return sol;
}

}  // namespace latol::qn
