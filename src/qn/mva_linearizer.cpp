#include "qn/mva_linearizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "qn/solver_error.hpp"
#include "qn/workspace.hpp"
#include "util/error.hpp"

namespace latol::qn {

namespace {

/// Outcome of one Core fixed point; the iterate itself lives in the
/// workspace (waiting/queue/throughput) and in `fractions`.
struct CoreOutcome {
  bool converged = true;
  long iterations = 0;
};

/// One Schweitzer-style fixed point at population `pop`, using the
/// correction terms d(slot, j): the queue of class i at station m seen by
/// an arriving class-j customer is (pop_i - delta_ij)(F_{i,m} + D_{i,m,j}).
/// Writes the queue-length fractions F(c, m) = n_{c,m} / N_c into
/// `fractions` (one entry per workspace slot) and leaves the final
/// waiting/queue/throughput iterate in `ws`.
CoreOutcome solve_core(SolverWorkspace& ws, const std::vector<long>& pop,
                       const std::vector<double>& pop_f,
                       const std::vector<double>& corrections,
                       const LinearizerOptions& options, double* fractions) {
  const std::size_t C = ws.num_classes();
  const std::size_t S = ws.num_slots();

  // Initialize fractions proportional to demand.
  std::fill_n(fractions, S, 0.0);
  for (std::size_t c = 0; c < C; ++c) {
    const double total = ws.total_demand[c];
    if (pop[c] == 0 || total <= 0.0) continue;
    for (std::size_t i = ws.first[c]; i < ws.first[c + 1]; ++i) {
      fractions[i] = ws.demand[i] / total;
    }
  }

  CoreOutcome out;
  bool converged = false;
  long iter = 0;
  double best_delta = std::numeric_limits<double>::infinity();
  for (; iter < options.max_core_iterations; ++iter) {
    if (options.cancel != nullptr && options.cancel->expired()) {
      throw SolverError(SolverErrorCode::kDeadlineExceeded,
                        "linearizer cancelled at core iteration " +
                            std::to_string(iter));
    }
    double delta = 0.0;
    for (std::size_t j = 0; j < C; ++j) {
      if (pop[j] == 0) continue;
      const double nj = pop_f[j];
      const std::size_t begin = ws.first[j];
      const std::size_t end = ws.first[j + 1];
      double cycle = 0.0;
      for (std::size_t k = begin; k < end; ++k) {
        double w = ws.service[k];
        if (ws.queueing[k] != 0) {
          const std::size_t m = ws.station[k];
          // Queue seen on arrival: the station's visiting classes in
          // increasing class order (the station-major view preserves the
          // dense kernel's summation order).
          double seen = 0.0;
          for (std::size_t t = ws.by_station_first[m];
               t < ws.by_station_first[m + 1]; ++t) {
            const std::size_t slot = ws.by_station_slot[t];
            const std::size_t i = ws.slot_class[slot];
            const double ni = pop_f[i] - (i == j ? 1.0 : 0.0);
            if (ni <= 0.0) continue;
            seen += ni * (fractions[slot] + corrections[slot * C + j]);
          }
          // Seidmann approximation (exact for servers == 1).
          w = ws.seidmann_fixed[k] +
              ws.seidmann_rate[k] * (1.0 + std::max(0.0, seen));
        }
        ws.waiting[k] = w;
        cycle += ws.visit[k] * w;
      }
      // With a validated network a vanishing or non-finite cycle time can
      // only be numerical breakdown (see solve_amva).
      if (!(cycle > 0.0) || !std::isfinite(cycle)) {
        throw SolverError(SolverErrorCode::kNumerical,
                          "class " + std::to_string(j) + " cycle time " +
                              std::to_string(cycle) + " at core iteration " +
                              std::to_string(iter));
      }
      const double lambda = nj / cycle;
      ws.throughput[j] = lambda;
      for (std::size_t k = begin; k < end; ++k) {
        const double q = lambda * ws.visit[k] * ws.waiting[k];
        if (!std::isfinite(q)) {
          throw SolverError(SolverErrorCode::kNumerical,
                            "queue length of class " + std::to_string(j) +
                                " at station " +
                                std::to_string(ws.station[k]) +
                                " became non-finite at core iteration " +
                                std::to_string(iter));
        }
        ws.queue[k] = q;
        const double f = q / nj;
        delta = std::max(delta, std::fabs(f - fractions[k]));
        fractions[k] = f;
      }
    }
    if (options.trace != nullptr) options.trace->record(delta);
    if (!std::isfinite(delta)) {
      throw SolverError(SolverErrorCode::kNumerical,
                        "core iterate delta became non-finite at iteration " +
                            std::to_string(iter));
    }
    if (delta < options.tolerance) {
      converged = true;
      ++iter;
      break;
    }
    if (iter >= options.divergence_window &&
        delta > options.divergence_factor * best_delta) {
      throw SolverError(SolverErrorCode::kDiverged,
                        "core delta " + std::to_string(delta) + " exceeds " +
                            std::to_string(options.divergence_factor) +
                            " x best delta " + std::to_string(best_delta) +
                            " at iteration " + std::to_string(iter));
    }
    best_delta = std::min(best_delta, delta);
  }
  out.converged = converged;
  out.iterations = iter;
  return out;
}

/// Warm-kernel Core (qn/hints.hpp): the same sweep as solve_core, but
/// seeded from `seed` (one fraction per slot, pre-validated by the
/// caller), with an optional stagnation tail past the tolerance (bitwise
/// stagnation or a canonicalized 2-cycle of the fraction vector). The
/// Core sweep is already a pure function of the fraction vector (unlike
/// AMVA there is no incremental cross-iteration state), so orbits from
/// different seeds merge bitwise once they meet.
CoreOutcome solve_core_warm(SolverWorkspace& ws, const std::vector<long>& pop,
                            const std::vector<double>& pop_f,
                            const std::vector<double>& corrections,
                            const LinearizerOptions& options,
                            const double* seed, long stagnation_budget,
                            double* fractions) {
  const std::size_t C = ws.num_classes();
  const std::size_t S = ws.num_slots();

  // Seed only the populated classes; zero-population classes keep the
  // plain kernel's zero fractions so the correction arithmetic sees the
  // exact same masked vectors either way.
  std::fill_n(fractions, S, 0.0);
  for (std::size_t c = 0; c < C; ++c) {
    const double total = ws.total_demand[c];
    if (pop[c] == 0 || total <= 0.0) continue;
    for (std::size_t i = ws.first[c]; i < ws.first[c + 1]; ++i) {
      fractions[i] = seed[i];
    }
  }

  thread_local std::vector<double> prev1;
  thread_local std::vector<double> prev2;
  prev1.clear();
  prev2.clear();

  CoreOutcome out;
  bool converged = false;
  bool tol_met = false;
  long stagnation_used = 0;
  long iter = 0;
  double best_delta = std::numeric_limits<double>::infinity();
  for (; iter < options.max_core_iterations; ++iter) {
    if (options.cancel != nullptr && options.cancel->expired()) {
      throw SolverError(SolverErrorCode::kDeadlineExceeded,
                        "linearizer cancelled at core iteration " +
                            std::to_string(iter));
    }
    prev2.swap(prev1);
    prev1.assign(fractions, fractions + S);

    double delta = 0.0;
    for (std::size_t j = 0; j < C; ++j) {
      if (pop[j] == 0) continue;
      const double nj = pop_f[j];
      const std::size_t begin = ws.first[j];
      const std::size_t end = ws.first[j + 1];
      double cycle = 0.0;
      for (std::size_t k = begin; k < end; ++k) {
        double w = ws.service[k];
        if (ws.queueing[k] != 0) {
          const std::size_t m = ws.station[k];
          double seen = 0.0;
          for (std::size_t t = ws.by_station_first[m];
               t < ws.by_station_first[m + 1]; ++t) {
            const std::size_t slot = ws.by_station_slot[t];
            const std::size_t i = ws.slot_class[slot];
            const double ni = pop_f[i] - (i == j ? 1.0 : 0.0);
            if (ni <= 0.0) continue;
            seen += ni * (fractions[slot] + corrections[slot * C + j]);
          }
          w = ws.seidmann_fixed[k] +
              ws.seidmann_rate[k] * (1.0 + std::max(0.0, seen));
        }
        ws.waiting[k] = w;
        cycle += ws.visit[k] * w;
      }
      if (!(cycle > 0.0) || !std::isfinite(cycle)) {
        throw SolverError(SolverErrorCode::kNumerical,
                          "class " + std::to_string(j) + " cycle time " +
                              std::to_string(cycle) + " at core iteration " +
                              std::to_string(iter));
      }
      const double lambda = nj / cycle;
      ws.throughput[j] = lambda;
      for (std::size_t k = begin; k < end; ++k) {
        const double q = lambda * ws.visit[k] * ws.waiting[k];
        if (!std::isfinite(q)) {
          throw SolverError(SolverErrorCode::kNumerical,
                            "queue length of class " + std::to_string(j) +
                                " at station " +
                                std::to_string(ws.station[k]) +
                                " became non-finite at core iteration " +
                                std::to_string(iter));
        }
        ws.queue[k] = q;
        const double f = q / nj;
        delta = std::max(delta, std::fabs(f - fractions[k]));
        fractions[k] = f;
      }
    }
    if (options.trace != nullptr) options.trace->record(delta);
    if (!std::isfinite(delta)) {
      throw SolverError(SolverErrorCode::kNumerical,
                        "core iterate delta became non-finite at iteration " +
                            std::to_string(iter));
    }
    if (delta < options.tolerance) tol_met = true;
    if (tol_met) {
      if (delta == 0.0) {
        converged = true;
        ++iter;
        break;
      }
      if (prev2.size() == S &&
          std::memcmp(fractions, prev2.data(), S * sizeof(double)) == 0) {
        if (std::memcmp(prev1.data(), fractions, S * sizeof(double)) < 0) {
          std::copy(prev1.begin(), prev1.begin() + S, fractions);
        }
        converged = true;
        ++iter;
        break;
      }
      if (++stagnation_used > stagnation_budget) {
        converged = true;
        ++iter;
        break;
      }
    } else {
      if (iter >= options.divergence_window &&
          delta > options.divergence_factor * best_delta) {
        throw SolverError(SolverErrorCode::kDiverged,
                          "core delta " + std::to_string(delta) + " exceeds " +
                              std::to_string(options.divergence_factor) +
                              " x best delta " + std::to_string(best_delta) +
                              " at iteration " + std::to_string(iter));
      }
      best_delta = std::min(best_delta, delta);
    }
  }
  out.converged = converged || tol_met;
  out.iterations = iter;
  return out;
}

}  // namespace

MvaSolution solve_linearizer(const ClosedNetwork& net,
                             const LinearizerOptions& options,
                             SolverWorkspace& ws) {
  net.validate();
  LATOL_REQUIRE(options.outer_iterations >= 1,
                "outer_iterations " << options.outer_iterations);
  LATOL_REQUIRE(options.divergence_factor > 0.0,
                "divergence_factor " << options.divergence_factor);
  LATOL_REQUIRE(options.divergence_window >= 0,
                "divergence_window " << options.divergence_window);

  ws.bind(net);
  const std::size_t C = ws.num_classes();
  const std::size_t S = ws.num_slots();

  // Linearizer-specific scratch, reused across solves like the workspace
  // itself. corrections holds d(slot, j) = D_{i,m,j} for slot = (i, m);
  // reduced_fractions holds one fraction vector per reduced population.
  thread_local std::vector<long> pop;
  thread_local std::vector<double> pop_f;
  thread_local std::vector<double> corrections;
  thread_local std::vector<double> full_fractions;
  thread_local std::vector<double> reduced_fractions;

  pop.assign(ws.population.begin(), ws.population.end());
  pop_f.assign(ws.population_f.begin(), ws.population_f.end());
  // Start with the Schweitzer assumption D = 0 (removing a customer
  // leaves fractions unchanged).
  corrections.assign(S * C, 0.0);
  full_fractions.resize(S);
  reduced_fractions.resize(C * S);

  CoreOutcome at_full =
      solve_core(ws, pop, pop_f, corrections, options, full_fractions.data());
  long total_iterations = at_full.iterations;
  for (int outer = 0; outer < options.outer_iterations; ++outer) {
    // Solve each reduced population N - 1_j with the current corrections.
    for (std::size_t j = 0; j < C; ++j) {
      const long saved = pop[j];
      const double saved_f = pop_f[j];
      if (pop[j] > 0) {
        pop[j] -= 1;
        pop_f[j] = static_cast<double>(pop[j]);
      }
      const CoreOutcome reduced = solve_core(ws, pop, pop_f, corrections,
                                             options,
                                             &reduced_fractions[j * S]);
      total_iterations += reduced.iterations;
      pop[j] = saved;
      pop_f[j] = saved_f;
    }
    // Update the correction terms from the observed fraction shifts.
    for (std::size_t s = 0; s < S; ++s) {
      for (std::size_t j = 0; j < C; ++j) {
        corrections[s * C + j] = reduced_fractions[j * S + s] -
                                 full_fractions[s];
      }
    }
    at_full = solve_core(ws, pop, pop_f, corrections, options,
                         full_fractions.data());
    total_iterations += at_full.iterations;
  }

  MvaSolution sol = ws.scatter_solution();
  sol.converged = at_full.converged;
  sol.iterations = total_iterations;
  return sol;
}

MvaSolution solve_linearizer(const ClosedNetwork& net,
                             const LinearizerOptions& options) {
  thread_local SolverWorkspace workspace;
  return solve_linearizer(net, options, workspace);
}

MvaSolution solve_linearizer(const ClosedNetwork& net,
                             const LinearizerOptions& options,
                             SolverWorkspace& ws, const SolveHints& hints) {
  net.validate();
  LATOL_REQUIRE(options.outer_iterations >= 1,
                "outer_iterations " << options.outer_iterations);
  LATOL_REQUIRE(options.divergence_factor > 0.0,
                "divergence_factor " << options.divergence_factor);
  LATOL_REQUIRE(options.divergence_window >= 0,
                "divergence_window " << options.divergence_window);

  ws.bind(net);
  const std::size_t C = ws.num_classes();
  const std::size_t S = ws.num_slots();

  thread_local std::vector<long> pop;
  thread_local std::vector<double> pop_f;
  thread_local std::vector<double> corrections;
  thread_local std::vector<double> full_fractions;
  thread_local std::vector<double> reduced_fractions;
  thread_local std::vector<double> seed;

  pop.assign(ws.population.begin(), ws.population.end());
  pop_f.assign(ws.population_f.begin(), ws.population_f.end());
  corrections.assign(S * C, 0.0);
  full_fractions.resize(S);
  reduced_fractions.resize(C * S);

  // Seed fractions F = n_{c,m} / N_c from the prior's queue lengths when
  // usable; the fractions change little when one customer is removed (the
  // very assumption Linearizer corrects), so the same seed serves the
  // full- and reduced-population Cores alike. Otherwise fall back to the
  // plain kernel's demand-proportional start.
  seed.assign(S, 0.0);
  bool prior_ok =
      hints.prior != nullptr && hints.prior->queue_length.rows() == C &&
      hints.prior->queue_length.cols() == ws.num_stations();
  if (prior_ok) {
    for (std::size_t c = 0; c < C && prior_ok; ++c) {
      if (ws.population[c] == 0 || ws.total_demand[c] <= 0.0) continue;
      for (std::size_t i = ws.first[c]; i < ws.first[c + 1]; ++i) {
        const double q = hints.prior->queue_length(c, ws.station[i]);
        if (!std::isfinite(q) || q < 0.0) {
          prior_ok = false;
          break;
        }
        seed[i] = q / ws.population_f[c];
      }
    }
  }
  if (!prior_ok) {
    for (std::size_t c = 0; c < C; ++c) {
      const double total = ws.total_demand[c];
      if (total <= 0.0) continue;
      for (std::size_t i = ws.first[c]; i < ws.first[c + 1]; ++i) {
        seed[i] = ws.demand[i] / total;
      }
    }
  }

  CoreOutcome at_full =
      solve_core_warm(ws, pop, pop_f, corrections, options, seed.data(),
                      hints.stagnation_budget, full_fractions.data());
  long total_iterations = at_full.iterations;
  for (int outer = 0; outer < options.outer_iterations; ++outer) {
    for (std::size_t j = 0; j < C; ++j) {
      const long saved = pop[j];
      const double saved_f = pop_f[j];
      if (pop[j] > 0) {
        pop[j] -= 1;
        pop_f[j] = static_cast<double>(pop[j]);
      }
      const CoreOutcome reduced = solve_core_warm(
          ws, pop, pop_f, corrections, options, seed.data(),
          hints.stagnation_budget, &reduced_fractions[j * S]);
      total_iterations += reduced.iterations;
      pop[j] = saved;
      pop_f[j] = saved_f;
    }
    for (std::size_t s = 0; s < S; ++s) {
      for (std::size_t j = 0; j < C; ++j) {
        corrections[s * C + j] = reduced_fractions[j * S + s] -
                                 full_fractions[s];
      }
    }
    at_full = solve_core_warm(ws, pop, pop_f, corrections, options,
                              seed.data(), hints.stagnation_budget,
                              full_fractions.data());
    total_iterations += at_full.iterations;
  }

  // Canonical output pass: re-derive waiting/queue/throughput from the
  // final full-population fractions alone (one evaluation sweep, no
  // fraction update), so the reported fields are a pure function of F*
  // rather than of the last Core sweep's in-flight state.
  for (std::size_t j = 0; j < C; ++j) {
    if (ws.population[j] == 0) continue;
    const double nj = ws.population_f[j];
    double cycle = 0.0;
    for (std::size_t k = ws.first[j]; k < ws.first[j + 1]; ++k) {
      double w = ws.service[k];
      if (ws.queueing[k] != 0) {
        const std::size_t m = ws.station[k];
        double seen_q = 0.0;
        for (std::size_t t = ws.by_station_first[m];
             t < ws.by_station_first[m + 1]; ++t) {
          const std::size_t slot = ws.by_station_slot[t];
          const std::size_t i = ws.slot_class[slot];
          const double ni = ws.population_f[i] - (i == j ? 1.0 : 0.0);
          if (ni <= 0.0) continue;
          seen_q += ni * (full_fractions[slot] + corrections[slot * C + j]);
        }
        w = ws.seidmann_fixed[k] +
            ws.seidmann_rate[k] * (1.0 + std::max(0.0, seen_q));
      }
      ws.waiting[k] = w;
      cycle += ws.visit[k] * w;
    }
    if (!(cycle > 0.0) || !std::isfinite(cycle)) {
      throw SolverError(SolverErrorCode::kNumerical,
                        "class " + std::to_string(j) + " cycle time " +
                            std::to_string(cycle) + " in output pass");
    }
    const double lambda = nj / cycle;
    ws.throughput[j] = lambda;
    for (std::size_t k = ws.first[j]; k < ws.first[j + 1]; ++k) {
      ws.queue[k] = lambda * ws.visit[k] * ws.waiting[k];
    }
  }

  MvaSolution sol = ws.scatter_solution();
  sol.converged = at_full.converged;
  sol.iterations = total_iterations;
  return sol;
}

MvaSolution solve_linearizer(const ClosedNetwork& net,
                             const LinearizerOptions& options,
                             const SolveHints& hints) {
  thread_local SolverWorkspace workspace;
  return solve_linearizer(net, options, workspace, hints);
}

}  // namespace latol::qn
