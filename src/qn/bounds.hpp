// Asymptotic (bottleneck) bounds for closed networks.
//
// These are the one-line bounds behind the paper's "simple bottleneck
// analysis" (§3, §5): per-class throughput can never exceed the inverse of
// the largest single-station demand, nor population / zero-contention
// cycle time. Used in property tests (every solver must respect them) and
// in the bottleneck module's closed forms.
#pragma once

#include <algorithm>
#include <limits>

#include "qn/network.hpp"

namespace latol::qn {

/// Upper bound on class-c throughput when class c is alone in the network:
/// lambda_c <= min(N_c / D_c_total, 1 / max_m D_{c,m}).
[[nodiscard]] inline double asymptotic_throughput_bound(
    const ClosedNetwork& net, std::size_t c) {
  double dmax = 0.0;
  for (std::size_t m = 0; m < net.num_stations(); ++m) {
    if (net.station(m).kind == StationKind::kQueueing)
      dmax = std::max(dmax, net.demand(c, m));
  }
  const double total = net.total_demand(c);
  double bound = static_cast<double>(net.population(c)) / total;
  if (dmax > 0.0) bound = std::min(bound, 1.0 / dmax);
  return bound;
}

/// Saturation (N -> infinity) throughput of class c alone in the network:
/// 1 / max_m D_{c,m} over queueing stations, counting each station's
/// parallel servers (a station with m servers saturates at m / D). This is
/// the asymptote `asymptotic_throughput_bound` approaches as the population
/// grows, and the load an open arrival stream must stay strictly below to
/// be stable (qn/open). Returns +inf for a class with no queueing demand
/// (delay-only classes never saturate).
[[nodiscard]] inline double saturation_throughput(const ClosedNetwork& net,
                                                  std::size_t c) {
  double dmax = 0.0;
  for (std::size_t m = 0; m < net.num_stations(); ++m) {
    if (net.station(m).kind != StationKind::kQueueing) continue;
    dmax = std::max(dmax, net.demand(c, m) /
                              static_cast<double>(net.station(m).servers));
  }
  if (dmax <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / dmax;
}

/// Lower bound: all other customers always queued in front
/// (lambda_c >= N_c / (N_total * D_c_total) is loose but safe for
/// single-class networks; for multi-class we only expose the single-class
/// form where it is exact as a bound).
[[nodiscard]] inline double pessimistic_throughput_bound(
    const ClosedNetwork& net, std::size_t c) {
  const double total = net.total_demand(c);
  const auto n_total = static_cast<double>(net.total_population());
  if (total <= 0.0 || n_total <= 0.0) return 0.0;
  return static_cast<double>(net.population(c)) / (n_total * total);
}

}  // namespace latol::qn
