#include "qn/routing.hpp"

#include <cmath>

#include "util/error.hpp"

namespace latol::qn {

util::Matrix visits_from_routing(const ClosedNetwork& net,
                                 const RoutedClosedNetwork& routed) {
  const std::size_t C = net.num_classes();
  const std::size_t M = net.num_stations();
  LATOL_REQUIRE(routed.routing.size() == C,
                "routing has " << routed.routing.size() << " classes, network "
                               << C);
  LATOL_REQUIRE(routed.reference_station.size() == C,
                "reference_station size mismatch");

  util::Matrix visits(C, M, 0.0);
  for (std::size_t c = 0; c < C; ++c) {
    const util::Matrix& P = routed.routing[c];
    LATOL_REQUIRE(P.rows() == M && P.cols() == M,
                  "routing matrix for class " << c << " has wrong shape");
    const std::size_t ref = routed.reference_station[c];
    LATOL_REQUIRE(ref < M, "reference station " << ref);

    // Rows must be stochastic for stations the class can leave; rows of
    // all zeros mark stations the class never occupies.
    std::vector<bool> occupied(M, false);
    for (std::size_t m = 0; m < M; ++m) {
      double row = 0.0;
      for (std::size_t m2 = 0; m2 < M; ++m2) row += P(m, m2);
      LATOL_REQUIRE(row == 0.0 || std::fabs(row - 1.0) < 1e-9,
                    "routing row " << m << " of class " << c << " sums to "
                                   << row);
      occupied[m] = row > 0.0;
    }
    LATOL_REQUIRE(occupied[ref],
                  "reference station " << ref << " unused by class " << c);

    // Solve v (I - P) = 0 with v[ref] = 1: transpose to (I - P)^T v^T = 0,
    // then overwrite the ref-th equation with v[ref] = 1.
    util::Matrix a(M, M, 0.0);
    std::vector<double> b(M, 0.0);
    for (std::size_t m = 0; m < M; ++m) {
      if (!occupied[m]) {
        a(m, m) = 1.0;  // forces v_m = 0
        continue;
      }
      a(m, m) = 1.0;
      for (std::size_t j = 0; j < M; ++j) a(m, j) -= P(j, m);
    }
    for (std::size_t j = 0; j < M; ++j) a(ref, j) = (j == ref) ? 1.0 : 0.0;
    b[ref] = 1.0;

    const std::vector<double> v = util::solve_linear_system(std::move(a), b);
    for (std::size_t m = 0; m < M; ++m) {
      LATOL_REQUIRE(v[m] > -1e-9, "negative visit ratio " << v[m]
                                                          << " at station " << m);
      visits(c, m) = std::max(0.0, v[m]);
    }
  }
  return visits;
}

void apply_routing_visits(ClosedNetwork& net,
                          const RoutedClosedNetwork& routed) {
  const util::Matrix visits = visits_from_routing(net, routed);
  for (std::size_t c = 0; c < net.num_classes(); ++c)
    for (std::size_t m = 0; m < net.num_stations(); ++m)
      net.set_visit_ratio(c, m, visits(c, m));
}

}  // namespace latol::qn
