// Common result type for the closed-network solvers.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "util/matrix.hpp"

namespace latol::qn {

/// Steady-state performance measures of a closed network. All solvers
/// (exact MVA, approximate MVA, CTMC) fill the same structure so results
/// can be compared field-by-field in tests.
struct MvaSolution {
  /// Per-class throughput in cycles per time unit (measured where the
  /// class's visit ratio is 1).
  std::vector<double> throughput;

  /// waiting(c, m): mean residence time (queueing + service) of a class-c
  /// customer per visit to station m.
  util::Matrix waiting;

  /// queue_length(c, m): time-average number of class-c customers at
  /// station m (including any in service).
  util::Matrix queue_length;

  /// Per-station utilization: sum over classes of throughput x demand.
  std::vector<double> utilization;

  /// Iterations used (approximate solvers; 0 for direct methods).
  long iterations = 0;

  /// False when an iterative solver hit its iteration budget. The solution
  /// fields then hold the last iterate.
  bool converged = true;

  /// Mean cycle (response) time of class c: population / throughput. A
  /// dead class (zero throughput) has an infinite cycle time — returning 0
  /// here would make a dead system read as infinitely fast.
  [[nodiscard]] double cycle_time(std::size_t c, long population) const {
    return throughput[c] > 0.0
               ? static_cast<double>(population) / throughput[c]
               : std::numeric_limits<double>::infinity();
  }

  /// Total queue length at station m over all classes.
  [[nodiscard]] double station_queue(std::size_t m) const {
    double total = 0.0;
    for (std::size_t c = 0; c < queue_length.rows(); ++c)
      total += queue_length(c, m);
    return total;
  }
};

}  // namespace latol::qn
