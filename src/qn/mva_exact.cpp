#include "qn/mva_exact.hpp"

#include <string>
#include <vector>

#include "qn/solver_error.hpp"
#include "qn/workspace.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace latol::qn {

namespace {

/// Points per level below which the level is processed inline: fanning a
/// handful of tiny recursions out to the pool costs more than running
/// them.
constexpr std::size_t kParallelThreshold = 64;

}  // namespace

MvaSolution solve_mva_exact(const ClosedNetwork& net, std::size_t max_states,
                            std::size_t workers,
                            const util::CancelToken* cancel) {
  net.validate();
  LATOL_REQUIRE(net.is_product_form(),
                "exact MVA requires class-independent service times at "
                "shared FCFS stations");
  for (std::size_t m = 0; m < net.num_stations(); ++m) {
    LATOL_REQUIRE(net.station(m).kind != StationKind::kQueueing ||
                      net.station(m).servers == 1,
                  "exact MVA handles single-server queueing stations only; "
                  "use the CTMC solver (exact) or AMVA (Seidmann "
                  "approximation) for multi-server stations");
  }

  const std::size_t C = net.num_classes();
  const std::size_t M = net.num_stations();

  std::vector<std::size_t> stride(C);
  std::vector<std::size_t> span(C);
  std::size_t states = 1;
  for (std::size_t c = 0; c < C; ++c) {
    stride[c] = states;
    span[c] = static_cast<std::size_t>(net.population(c)) + 1;
    LATOL_REQUIRE(states <= max_states / span[c],
                  "population lattice exceeds max_states=" << max_states);
    states *= span[c];
  }

  // Flat per-class views of the network (visit/service/queueing per slot).
  // The plain reference matters: thread_local variables are not captured
  // by lambdas, so process_point below must name a normal variable to see
  // THIS thread's workspace from the pool workers.
  thread_local SolverWorkspace tls_workspace;
  SolverWorkspace& ws = tls_workspace;
  ws.bind(net);

  // A populated class with zero total demand would produce a zero cycle
  // time at its first lattice level; with positive total demand the cycle
  // time is bounded below by it at every point, so checking once here is
  // equivalent to the per-point check the serial recursion used to do.
  for (std::size_t c = 0; c < C; ++c) {
    LATOL_REQUIRE(ws.population[c] == 0 || ws.total_demand[c] > 0.0,
                  "class " << c << " has zero cycle time");
  }

  // Total queue length per station for every population vector <= N,
  // station-contiguous per lattice point.
  std::vector<double> total_queue(states * M, 0.0);

  // Group lattice points by total population level in one odometer pass
  // (the odometer enumerates points in mixed-radix order, so the running
  // counter IS the lattice index). Every N - 1_c predecessor of a level-L
  // point sits at level L-1, which makes each level embarrassingly
  // parallel: a point writes only its own total_queue row and reads only
  // level L-1 rows, so results are bit-identical for any worker count and
  // stealing order (DESIGN.md §10).
  const long total_pop = net.total_population();
  std::vector<std::vector<std::size_t>> levels(
      static_cast<std::size_t>(total_pop) + 1);
  {
    std::vector<long> pop(C, 0);
    long sum = 0;
    std::size_t idx = 0;
    for (;;) {
      levels[static_cast<std::size_t>(sum)].push_back(idx);
      std::size_t c = 0;
      for (; c < C; ++c) {
        if (pop[c] < net.population(c)) {
          ++pop[c];
          ++sum;
          break;
        }
        sum -= pop[c];
        pop[c] = 0;
      }
      if (c == C) break;
      ++idx;
    }
  }

  MvaSolution sol;
  sol.throughput.assign(C, 0.0);
  sol.waiting = util::Matrix(C, M, 0.0);
  sol.queue_length = util::Matrix(C, M, 0.0);
  sol.utilization.assign(M, 0.0);

  // One lattice point: apply the arrival theorem to every populated class
  // and accumulate this point's total queue lengths. The target point
  // (the full population, the lattice's single top point) additionally
  // materializes the solution.
  const auto process_point = [&](std::size_t idx, bool at_target) {
    thread_local std::vector<double> w;
    w.resize(ws.num_slots());
    double* nbar = &total_queue[idx * M];
    for (std::size_t c = 0; c < C; ++c) {
      const auto pop_c = static_cast<long>((idx / stride[c]) % span[c]);
      if (pop_c == 0) continue;
      const double* prev = &total_queue[(idx - stride[c]) * M];
      double cycle = 0.0;
      for (std::size_t k = ws.first[c]; k < ws.first[c + 1]; ++k) {
        const double s = ws.service[k];
        const double wk =
            ws.queueing[k] != 0 ? s * (1.0 + prev[ws.station[k]]) : s;
        w[k] = wk;
        cycle += ws.visit[k] * wk;
      }
      const double lambda = static_cast<double>(pop_c) / cycle;
      if (at_target) {
        sol.throughput[c] = lambda;
        for (std::size_t k = ws.first[c]; k < ws.first[c + 1]; ++k) {
          sol.waiting(c, ws.station[k]) = w[k];
          sol.queue_length(c, ws.station[k]) = lambda * ws.visit[k] * w[k];
        }
      }
      for (std::size_t k = ws.first[c]; k < ws.first[c + 1]; ++k) {
        nbar[ws.station[k]] += lambda * ws.visit[k] * w[k];
      }
    }
  };

  for (long level = 1; level <= total_pop; ++level) {
    // Per-level cancellation: parallel_for bodies must not throw, so the
    // check lives between levels (and each level is bounded work).
    if (cancel != nullptr && cancel->expired()) {
      throw SolverError(SolverErrorCode::kDeadlineExceeded,
                        "exact MVA cancelled at population level " +
                            std::to_string(level) + " of " +
                            std::to_string(total_pop));
    }
    const std::vector<std::size_t>& pts =
        levels[static_cast<std::size_t>(level)];
    const bool at_target = (level == total_pop);
    if (pts.size() < kParallelThreshold) {
      for (const std::size_t idx : pts) process_point(idx, at_target);
    } else {
      util::parallel_for(
          pts.size(), [&](std::size_t i) { process_point(pts[i], at_target); },
          workers);
    }
  }

  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t k = ws.first[c]; k < ws.first[c + 1]; ++k) {
      sol.utilization[ws.station[k]] += sol.throughput[c] * ws.demand[k];
    }
  }
  return sol;
}

}  // namespace latol::qn
