#include "qn/mva_exact.hpp"

#include <vector>

#include "util/error.hpp"

namespace latol::qn {

namespace {

/// Mixed-radix index of a population vector in the lattice
/// [0..N_0] x ... x [0..N_{C-1}].
std::size_t lattice_index(const std::vector<long>& pop,
                          const std::vector<std::size_t>& stride) {
  std::size_t idx = 0;
  for (std::size_t c = 0; c < pop.size(); ++c)
    idx += static_cast<std::size_t>(pop[c]) * stride[c];
  return idx;
}

}  // namespace

MvaSolution solve_mva_exact(const ClosedNetwork& net, std::size_t max_states) {
  net.validate();
  LATOL_REQUIRE(net.is_product_form(),
                "exact MVA requires class-independent service times at "
                "shared FCFS stations");
  for (std::size_t m = 0; m < net.num_stations(); ++m) {
    LATOL_REQUIRE(net.station(m).kind != StationKind::kQueueing ||
                      net.station(m).servers == 1,
                  "exact MVA handles single-server queueing stations only; "
                  "use the CTMC solver (exact) or AMVA (Seidmann "
                  "approximation) for multi-server stations");
  }

  const std::size_t C = net.num_classes();
  const std::size_t M = net.num_stations();

  std::vector<std::size_t> stride(C);
  std::size_t states = 1;
  for (std::size_t c = 0; c < C; ++c) {
    stride[c] = states;
    const auto span = static_cast<std::size_t>(net.population(c)) + 1;
    LATOL_REQUIRE(states <= max_states / span,
                  "population lattice exceeds max_states=" << max_states);
    states *= span;
  }

  // Total queue length per station for every population vector <= N.
  std::vector<std::vector<double>> total_queue(states,
                                               std::vector<double>(M, 0.0));

  // Enumerate lattice points in order of increasing total population so
  // every N - 1_c predecessor is already computed. Odometer enumeration
  // over the lattice happens to visit predecessors first only per-class;
  // we instead sweep by total population level.
  const long total_pop = net.total_population();

  std::vector<long> pop(C, 0);
  std::vector<double> w(M, 0.0);
  std::vector<double> lambda(C, 0.0);

  MvaSolution sol;
  sol.throughput.assign(C, 0.0);
  sol.waiting = util::Matrix(C, M, 0.0);
  sol.queue_length = util::Matrix(C, M, 0.0);
  sol.utilization.assign(M, 0.0);

  for (long level = 1; level <= total_pop; ++level) {
    // Iterate every lattice vector with sum == level via an odometer.
    std::fill(pop.begin(), pop.end(), 0L);
    for (;;) {
      long sum = 0;
      for (const long p : pop) sum += p;
      if (sum == level) {
        const std::size_t idx = lattice_index(pop, stride);
        auto& nbar = total_queue[idx];
        const bool at_target = (level == total_pop);
        for (std::size_t c = 0; c < C; ++c) {
          if (pop[c] == 0) {
            lambda[c] = 0.0;
            continue;
          }
          pop[c] -= 1;
          const auto& prev = total_queue[lattice_index(pop, stride)];
          pop[c] += 1;
          double cycle = 0.0;
          for (std::size_t m = 0; m < M; ++m) {
            const double v = net.visit_ratio(c, m);
            if (v <= 0.0) {
              w[m] = 0.0;
              continue;
            }
            const double s = net.service_time(c, m);
            w[m] = (net.station(m).kind == StationKind::kQueueing)
                       ? s * (1.0 + prev[m])
                       : s;
            cycle += v * w[m];
          }
          LATOL_REQUIRE(cycle > 0.0, "class " << c << " has zero cycle time");
          lambda[c] = static_cast<double>(pop[c]) / cycle;
          if (at_target) {
            sol.throughput[c] = lambda[c];
            for (std::size_t m = 0; m < M; ++m) {
              sol.waiting(c, m) = w[m];
              sol.queue_length(c, m) =
                  lambda[c] * net.visit_ratio(c, m) * w[m];
            }
          } else {
            for (std::size_t m = 0; m < M; ++m)
              nbar[m] += lambda[c] * net.visit_ratio(c, m) * w[m];
          }
          if (at_target) {
            for (std::size_t m = 0; m < M; ++m)
              nbar[m] += lambda[c] * net.visit_ratio(c, m) * w[m];
          }
        }
      }
      // Odometer step constrained to pop[c] <= N_c.
      std::size_t c = 0;
      for (; c < C; ++c) {
        if (pop[c] < net.population(c)) {
          ++pop[c];
          break;
        }
        pop[c] = 0;
      }
      if (c == C) break;
    }
  }

  for (std::size_t m = 0; m < M; ++m) {
    double u = 0.0;
    for (std::size_t c = 0; c < C; ++c)
      u += sol.throughput[c] * net.demand(c, m);
    sol.utilization[m] = u;
  }
  return sol;
}

}  // namespace latol::qn
