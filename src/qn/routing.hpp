// Routing-matrix view of a closed network, for the CTMC ground-truth
// solver and for deriving visit ratios from first-principles routing.
//
// The MVA solvers work from visit ratios (the paper's em/ei/eo); the CTMC
// solver needs the actual Markov routing. This header provides the routed
// description plus the traffic-equation solve that converts routing
// probabilities into visit ratios, so both views can be checked against
// each other in tests.
#pragma once

#include <cstddef>
#include <vector>

#include "qn/network.hpp"
#include "util/matrix.hpp"

namespace latol::qn {

/// A closed network where each class moves between stations according to a
/// Markov routing matrix. Service times/kinds and populations are carried
/// by the embedded ClosedNetwork (whose visit ratios may be unset).
struct RoutedClosedNetwork {
  /// routing[c](m, m2): probability a class-c customer finishing service at
  /// station m proceeds to station m2. Each row of each matrix must sum to
  /// 1 over stations the class can occupy.
  std::vector<util::Matrix> routing;

  /// Station at which class c's visit ratio is defined to be 1 (cycle
  /// boundary; throughput is counted as departures from this station).
  std::vector<std::size_t> reference_station;
};

/// Solve the traffic equations v_c = v_c P_c with v_c[ref] = 1 and return
/// the per-class visit ratios (classes x stations). Throws on inconsistent
/// routing (rows not summing to 1, unreachable reference station).
[[nodiscard]] util::Matrix visits_from_routing(const ClosedNetwork& net,
                                               const RoutedClosedNetwork& routed);

/// Copy visit ratios computed from `routed` into `net` (convenience).
void apply_routing_visits(ClosedNetwork& net,
                          const RoutedClosedNetwork& routed);

}  // namespace latol::qn
