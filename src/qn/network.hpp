// Multi-class closed queueing network description.
//
// This is the substrate under the paper's analytical framework (§2): a
// product-form ("BCMP") closed network of single-server FCFS stations with
// exponentially distributed service, one closed customer class per
// processor. The description is solver-agnostic: exact MVA, approximate
// MVA (the paper's Fig. 3 algorithm), convolution, and the brute-force
// CTMC solver all consume a ClosedNetwork.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace latol::qn {

/// Station service discipline.
enum class StationKind {
  /// FCFS queue, exponential service, `Station::servers` parallel servers
  /// (1 = the paper's stations). Product form requires the service time
  /// to be class-independent at stations visited by more than one class;
  /// `ClosedNetwork::is_product_form()` checks this. For servers > 1 the
  /// MVA solvers use the Seidmann approximation (service s/m plus a fixed
  /// delay s(m-1)/m); the CTMC solver is exact.
  kQueueing,
  /// Infinite-server (pure delay) station: no queueing, per-class delays
  /// are allowed under product form. Also models pipelined resources
  /// (e.g. wormhole switches) that never serialize traffic.
  kDelay,
};

/// One service center.
struct Station {
  std::string name;
  StationKind kind = StationKind::kQueueing;
  /// Parallel servers for kQueueing (>= 1); ignored for kDelay. A
  /// multiported memory is a kQueueing station with servers = ports.
  int servers = 1;
};

/// A closed, multi-class queueing network with per-class visit ratios and
/// service times. Visit ratios are relative to an arbitrary per-class
/// reference; throughputs reported by the solvers are "cycles per time
/// unit" where one cycle corresponds to visit ratio 1.
class ClosedNetwork {
 public:
  /// `stations` defines the service centers; `num_classes` closed classes
  /// are created with population 0, zero visit ratios, and zero service.
  ClosedNetwork(std::vector<Station> stations, std::size_t num_classes);

  [[nodiscard]] std::size_t num_stations() const { return stations_.size(); }
  [[nodiscard]] std::size_t num_classes() const { return population_.size(); }
  [[nodiscard]] const Station& station(std::size_t m) const;

  /// Closed population of class `c` (threads resident on processor `c` in
  /// the MMS instantiation).
  void set_population(std::size_t c, long n);
  [[nodiscard]] long population(std::size_t c) const;
  [[nodiscard]] long total_population() const;

  /// Mean visits by a class-`c` customer to station `m` per cycle.
  void set_visit_ratio(std::size_t c, std::size_t m, double v);
  [[nodiscard]] double visit_ratio(std::size_t c, std::size_t m) const;

  /// Mean service time of a class-`c` customer at station `m`.
  void set_service_time(std::size_t c, std::size_t m, double s);
  [[nodiscard]] double service_time(std::size_t c, std::size_t m) const;

  /// Service demand D = visit ratio x service time.
  [[nodiscard]] double demand(std::size_t c, std::size_t m) const;

  /// Total demand of class `c` over all stations (the zero-contention
  /// cycle time; the asymptotic-bound denominator).
  [[nodiscard]] double total_demand(std::size_t c) const;

  /// True when every queueing station visited by two or more classes has
  /// identical service times across the classes that visit it — the BCMP
  /// condition under which MVA is exact for this network.
  [[nodiscard]] bool is_product_form(double rel_tol = 1e-12) const;

  /// Throws InvalidArgument unless populations are non-negative, at least
  /// one class has customers, and every class with customers has positive
  /// total demand.
  void validate() const;

 private:
  std::vector<Station> stations_;
  std::vector<long> population_;
  util::Matrix visits_;   // classes x stations
  util::Matrix service_;  // classes x stations
};

}  // namespace latol::qn
