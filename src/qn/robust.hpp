// Resilient solver front-end: validate, solve, degrade gracefully.
//
// The paper's AMVA fixed point (its Fig. 3) is only approximately
// convergent, and a production service sweeping millions of configurations
// cannot afford a diverged or NaN iterate silently becoming a "result".
// robust_solve() validates the network, runs the requested solver, and on
// any failure degrades through a configurable chain — by default
//
//   AMVA -> Linearizer -> exact MVA (small populations) -> asymptotic
//   bounds (qn/bounds.hpp)
//
// following Hill's observation that bottleneck/Little's-law bounds are the
// right cheap backstop when detailed models misbehave. The returned
// SolveReport records which solver answered, every attempt that failed and
// why, the Schweitzer fixed-point residual of the accepted solution, and
// wall time, so callers (sweep engine, CLI, benches) can surface degraded
// results instead of aborting or lying.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "qn/mva_approx.hpp"
#include "qn/mva_linearizer.hpp"
#include "qn/network.hpp"
#include "qn/solution.hpp"
#include "qn/solver_error.hpp"

namespace latol::qn {

/// The solvers a fallback chain can be built from, in decreasing order of
/// model fidelity (and cost) for this codebase's networks.
enum class SolverKind {
  kAmva,        ///< Bard–Schweitzer fixed point (the paper's algorithm)
  kLinearizer,  ///< Chandy–Neuse Linearizer (slower, more accurate)
  kExactMva,    ///< exact MVA; only small populations / product form
  kBounds,      ///< asymptotic bottleneck bounds (always succeed)
  kFesc,        ///< hierarchical FESC decomposition (core/hierarchical);
                ///< provenance only — never a robust_solve chain link
};

/// Stable lowercase identifier ("amva", "linearizer", "exact-mva",
/// "bounds", "fesc") for reports and CSV columns.
[[nodiscard]] const char* solver_kind_name(SolverKind kind);

/// Configuration of robust_solve().
///
/// Cancellation: a token set on `amva.cancel` governs the whole chain —
/// robust_solve checks it before every link, forwards it to Linearizer
/// (unless `linearizer.cancel` is already set) and exact MVA, and treats
/// kDeadlineExceeded as terminal: the chain stops immediately and the
/// report carries error = kDeadlineExceeded instead of degrading to
/// bounds (DESIGN.md §7, §11).
struct RobustOptions {
  /// Solvers to try, in order. The first link is the "requested" solver;
  /// an answer from any later link is flagged degraded.
  std::vector<SolverKind> chain{SolverKind::kAmva, SolverKind::kLinearizer,
                                SolverKind::kExactMva, SolverKind::kBounds};
  AmvaOptions amva{};
  LinearizerOptions linearizer{};
  /// Exact MVA is attempted only when the population lattice
  /// prod_c (N_c + 1) fits this budget (and the network is product form
  /// with single-server queueing stations); otherwise the link is skipped.
  std::size_t exact_max_states = 2'000'000;
  /// Record per-iteration convergence traces into SolveAttempt::trace
  /// (each attempt gets its own sink, so a failed AMVA attempt keeps its
  /// partial history alongside the fallback that answered). Off by
  /// default: tracing costs one vector append per solver iteration.
  bool record_traces = false;
  /// Per-attempt trace capacity (entries beyond it are counted, not
  /// stored); see obs::ConvergenceTrace.
  std::size_t trace_capacity = obs::ConvergenceTrace::kDefaultCapacity;
  /// Warm-start hints (qn/hints.hpp): when non-null, the AMVA and
  /// Linearizer links run on the warm kernels, seeded from the hint (a
  /// deterministic pure function of network + options + hint). Exact MVA
  /// and bounds ignore hints (they are direct methods). Not owned; must
  /// outlive the call. nullptr (the default) keeps every link on the
  /// plain kernels, bit-identical to earlier releases.
  const SolveHints* hints = nullptr;
};

/// One link of the chain, as it actually went.
struct SolveAttempt {
  SolverKind solver = SolverKind::kAmva;
  bool success = false;
  /// Failure taxonomy code; unset for successes and for links that were
  /// skipped as inapplicable (see `detail`).
  std::optional<SolverErrorCode> error;
  long iterations = 0;
  double wall_seconds = 0.0;
  std::string detail;  ///< error message or skip reason; empty on success
  /// Per-iteration residual history of this attempt; empty unless
  /// RobustOptions::record_traces was set (and the solver is iterative —
  /// exact MVA and bounds leave it empty).
  obs::ConvergenceTrace trace;
};

/// Solution-consistency checks (Hill's "sanity checks should ride along"):
/// cheap invariants every accepted solve is measured against. Violations
/// are reported as warnings in the metrics stream, never hard failures —
/// a bounds answer legitimately breaks Little's law, and callers must
/// still see it.
struct InvariantReport {
  /// Little's law per class: max over classes of
  /// |N_c - X_c * sum_m v_{c,m} w_{c,m}| / N_c.
  double littles_law_error = 0.0;
  /// Flow balance / visit-ratio consistency: max over stations of the gap
  /// between reported utilization and sum_c X_c * D_{c,m} (relative to
  /// max(1, U_m)), joined with the station-level Little's-law gap
  /// max |n_{c,m} - X_c v_{c,m} w_{c,m}| / N_c.
  double flow_balance_error = 0.0;
  /// Human-readable violations above kWarnThreshold; empty when clean.
  std::vector<std::string> warnings;

  static constexpr double kWarnThreshold = 1e-6;
};

/// Evaluate the invariants of `sol` against `net`. Never throws on a bad
/// solution (that is the point); throws InvalidArgument only when the
/// shapes do not match the network.
[[nodiscard]] InvariantReport check_invariants(const ClosedNetwork& net,
                                               const MvaSolution& sol);

// --- one shared definition of solve health ---------------------------------
//
// "Converged" and "clean/degraded" used to be re-derived ad hoc by the
// sweep engine, the experiment runner, the CLI, and the benches, and the
// definitions drifted. Every consumer now goes through these two
// predicates (regression-tested in tests/exp/runner_test.cpp).

/// A point's numbers are trustworthy: some solver produced a converged
/// answer (possibly a fallback).
[[nodiscard]] constexpr bool solve_converged(bool has_error, bool converged) {
  return !has_error && converged;
}

/// A point is clean: converged AND answered by the requested solver. The
/// complement of this predicate is what manifests count as "degraded".
[[nodiscard]] constexpr bool solve_clean(bool has_error, bool converged,
                                         bool degraded) {
  return solve_converged(has_error, converged) && !degraded;
}

/// What robust_solve() produced and how it got there.
struct SolveReport {
  /// The accepted solution; meaningless when !ok().
  MvaSolution solution;
  /// Which link of the chain produced `solution`.
  SolverKind solver = SolverKind::kAmva;
  /// True when a fallback (not the first link of the chain) answered.
  bool degraded = false;
  /// Schweitzer fixed-point residual of the accepted solution: the max
  /// absolute queue-length change of one more fixed-point evaluation.
  /// ~0 for a converged AMVA/Linearizer answer; for exact-MVA answers it
  /// measures the Schweitzer approximation gap (informational); large for
  /// bounds answers (they are not a fixed point).
  double residual = 0.0;
  /// Total wall time across all attempts, seconds.
  double wall_seconds = 0.0;
  /// Every link tried (or skipped), in chain order.
  std::vector<SolveAttempt> attempts;
  /// Invariant checks of the accepted solution (zeroed when !ok()).
  InvariantReport invariants;
  /// Set when no link produced an answer; `solution` is then meaningless.
  std::optional<SolverErrorCode> error;

  [[nodiscard]] bool ok() const { return !error.has_value(); }

  /// One-line human-readable outcome, e.g.
  /// "solved by amva (37 iterations, residual 8.2e-11)" or
  /// "degraded to bounds after amva: iteration-budget".
  [[nodiscard]] std::string summary() const;
};

/// Validate `net` and solve it, degrading through `options.chain`. Never
/// throws on solver failure (inspect SolveReport::error); throws
/// InvalidArgument only on nonsensical *options* (empty chain, bad
/// tolerances).
[[nodiscard]] SolveReport robust_solve(const ClosedNetwork& net,
                                       const RobustOptions& options = {});

/// Max absolute difference between `sol`'s queue lengths and one Schweitzer
/// fixed-point evaluation from them (Jacobi step, no mutation). Zero at the
/// Bard–Schweitzer fixed point; +inf when the evaluation breaks down.
[[nodiscard]] double fixed_point_residual(const ClosedNetwork& net,
                                          const MvaSolution& sol);

/// The last-resort answer: per-class asymptotic throughput bounds, jointly
/// scaled down so no queueing station is loaded beyond its servers, with
/// zero-contention waiting times. Optimistic but finite and never absurd —
/// a dead system reports zero throughput, not infinite speed. Throws
/// InvalidArgument on an invalid network.
[[nodiscard]] MvaSolution bounds_solution(const ClosedNetwork& net);

}  // namespace latol::qn
