// Flat solver arena for the MVA family (DESIGN.md §10).
//
// The AMVA/Linearizer hot loops used to re-walk the ClosedNetwork accessor
// surface (out-of-line calls, bounds checks, dense class x station matrices
// full of structural zeros) on every iteration. SolverWorkspace flattens
// one network into contiguous class-major arrays once per solve — and,
// because instances are reused across solves (the solvers keep one per
// thread), across the points of a parameter sweep without reallocating.
//
// Layout: per class c, the stations it actually visits (visit ratio > 0)
// occupy the contiguous slot range [first[c], first[c+1]), in increasing
// station order. Iterating slots in order therefore replays the exact
// station order of the original dense loops, which is what keeps the
// flat kernels byte-identical to the nested-vector implementation they
// replaced (the §10 invariants).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "qn/network.hpp"
#include "qn/solution.hpp"

namespace latol::qn {

/// Contiguous class-major scratch arena for the MVA-family solvers.
///
/// `bind()` compacts a ClosedNetwork into the flat views below; the
/// solver kernels then run branch-light passes over dense arrays. All
/// vectors keep their capacity across `bind()` calls, so a workspace
/// reused across the points of a sweep allocates only when the network
/// grows. A workspace is single-threaded scratch: share one per thread
/// (the solvers default to a thread_local instance), never across
/// threads.
class SolverWorkspace {
 public:
  SolverWorkspace() = default;

  /// (Re)bind the workspace to `net`: fills the network views and
  /// resizes the iterate arrays (zero-initialized). The network must
  /// already be validated; `bind` does not re-validate.
  void bind(const ClosedNetwork& net);

  /// Classes of the bound network.
  [[nodiscard]] std::size_t num_classes() const { return classes_; }
  /// Stations of the bound network.
  [[nodiscard]] std::size_t num_stations() const { return stations_; }
  /// Total visited (class, station) slots.
  [[nodiscard]] std::size_t num_slots() const { return station.size(); }

  /// Materialize the dense MvaSolution from the per-slot iterate state
  /// (`waiting`, `queue`, per-class `throughput`): scatters the compact
  /// arrays back into class x station matrices and accumulates
  /// per-station utilization in class order, exactly as the dense
  /// solvers did. `iterations`/`converged` are left at their defaults
  /// for the caller to fill.
  [[nodiscard]] MvaSolution scatter_solution() const;

  // --- network views (read-only after bind) ------------------------------

  /// Slot range of class c: slots [first[c], first[c+1]) in increasing
  /// station order. Size classes + 1.
  std::vector<std::size_t> first;
  /// Station index of each slot.
  std::vector<std::uint32_t> station;
  /// Visit ratio v_{c,m} of each slot (> 0 by construction).
  std::vector<double> visit;
  /// Service time s_{c,m} of each slot.
  std::vector<double> service;
  /// Precomputed demand v_{c,m} * s_{c,m} of each slot (the exact same
  /// product ClosedNetwork::demand computes).
  std::vector<double> demand;
  /// Seidmann multi-server terms of each slot, precomputed with the same
  /// expressions the dense kernels used: `seidmann_fixed` is
  /// s*(servers-1)/servers (the fixed pipeline delay), `seidmann_rate`
  /// is s/servers (the sped-up server). For single-server stations they
  /// reduce to 0 and s.
  std::vector<double> seidmann_fixed;
  /// s/servers of each slot; see `seidmann_fixed`.
  std::vector<double> seidmann_rate;
  /// 1 when the slot's station queues (StationKind::kQueueing), 0 for
  /// pure-delay stations.
  std::vector<std::uint8_t> queueing;
  /// Class index of each slot (the inverse of `first`).
  std::vector<std::uint32_t> slot_class;
  /// Station-major transpose: station m's visiting slots are
  /// by_station_slot[by_station_first[m] .. by_station_first[m+1]), in
  /// increasing class order — the order the dense kernels summed classes
  /// at a station, which is what the Linearizer's arrival-queue loop must
  /// replay. Size stations + 1 / num_slots().
  std::vector<std::size_t> by_station_first;
  /// Slot list of the station-major view; see `by_station_first`.
  std::vector<std::size_t> by_station_slot;
  /// Per-class population N_c.
  std::vector<long> population;
  /// Per-class population as double (the kernels' n_c).
  std::vector<double> population_f;
  /// Per-class total demand (ClosedNetwork::total_demand).
  std::vector<double> total_demand;

  // --- iterate state (owned by the running kernel) ------------------------

  /// Per-slot queue-length iterate n_{c,m}.
  std::vector<double> queue;
  /// Per-slot residence-time iterate w_{c,m}.
  std::vector<double> waiting;
  /// Per-station total queue length (maintained incrementally by the
  /// AMVA Gauss–Seidel sweep).
  std::vector<double> station_total;
  /// Per-class throughput iterate.
  std::vector<double> throughput;

 private:
  std::size_t classes_ = 0;
  std::size_t stations_ = 0;
};

}  // namespace latol::qn
