#include "qn/convolution.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace latol::qn {

ConvolutionSolution solve_convolution(const ClosedNetwork& net) {
  net.validate();
  LATOL_REQUIRE(net.num_classes() == 1,
                "convolution solver handles single-class networks; got "
                    << net.num_classes() << " classes");
  for (std::size_t m = 0; m < net.num_stations(); ++m) {
    LATOL_REQUIRE(net.station(m).kind != StationKind::kQueueing ||
                      net.station(m).servers == 1,
                  "convolution solver handles single-server stations only");
  }
  const std::size_t M = net.num_stations();
  const long N = net.population(0);

  // Rescale demands so the largest is 1: G(n) would otherwise overflow or
  // underflow for large populations. Scaling demands by 1/a scales G(n) by
  // a^-n and throughput by a, which we undo at the end.
  double dmax = 0.0;
  for (std::size_t m = 0; m < M; ++m) dmax = std::max(dmax, net.demand(0, m));
  LATOL_REQUIRE(dmax > 0.0, "network has zero total demand");
  const double scale = dmax;

  const auto n_states = static_cast<std::size_t>(N) + 1;
  std::vector<double> g(n_states, 0.0);
  g[0] = 1.0;
  for (std::size_t m = 0; m < M; ++m) {
    const double d = net.demand(0, m) / scale;
    if (d <= 0.0) continue;
    if (net.station(m).kind == StationKind::kQueueing) {
      // In-place convolution with the geometric station factor.
      for (std::size_t n = 1; n < n_states; ++n) g[n] += d * g[n - 1];
    } else {
      // Delay (infinite-server) station factor d^k / k!.
      std::vector<double> h(n_states, 0.0);
      for (std::size_t n = 0; n < n_states; ++n) {
        double term = 1.0;  // d^k / k!
        for (std::size_t k = 0; k <= n; ++k) {
          h[n] += term * g[n - k];
          term *= d / static_cast<double>(k + 1);
        }
      }
      g = std::move(h);
    }
  }

  ConvolutionSolution out;
  out.normalization = g;
  out.demand_scale = scale;

  MvaSolution& sol = out.measures;
  sol.throughput.assign(1, 0.0);
  sol.waiting = util::Matrix(1, M, 0.0);
  sol.queue_length = util::Matrix(1, M, 0.0);
  sol.utilization.assign(M, 0.0);

  if (N == 0) return out;
  const double lambda = (g[n_states - 2] / g[n_states - 1]) / scale;
  sol.throughput[0] = lambda;
  for (std::size_t m = 0; m < M; ++m) {
    const double d = net.demand(0, m);
    sol.utilization[m] = lambda * d;
    if (net.visit_ratio(0, m) <= 0.0) continue;
    if (net.station(m).kind == StationKind::kQueueing) {
      // n_m(N) = sum_{k=1..N} (d/scale)^k G(N-k) / G(N).
      double qlen = 0.0;
      double dk = 1.0;
      const double ds = d / scale;
      for (long k = 1; k <= N; ++k) {
        dk *= ds;
        qlen += dk * g[static_cast<std::size_t>(N - k)];
      }
      qlen /= g[static_cast<std::size_t>(N)];
      sol.queue_length(0, m) = qlen;
    } else {
      sol.queue_length(0, m) = lambda * d;  // Little's law, no queueing
    }
    sol.waiting(0, m) =
        sol.queue_length(0, m) / (lambda * net.visit_ratio(0, m));
  }
  return out;
}

}  // namespace latol::qn
