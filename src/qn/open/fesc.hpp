// Flow-equivalent service centers and two-level hierarchical solving.
//
// Norton's theorem for product-form networks (Chandy–Herzog–Woo; the
// recipe follows Thomasian's hierarchical-analysis survey): a designated
// subnetwork can be replaced by one load-dependent station whose rate at
// population j equals the subnetwork's throughput with j customers
// circulating in it alone. For single-class product-form networks the
// reduction is *exact* — the two-level solve reproduces the full solve to
// numerical precision — while costing O(N x M_sub) for the table plus a
// tiny high-level model, instead of a solve over the whole station set.
// This is what makes heterogeneous PE speeds and 10-100x larger
// topologies tractable (core/hierarchical.hpp builds on it).
#pragma once

#include <cstddef>
#include <vector>

#include "qn/network.hpp"
#include "util/matrix.hpp"

namespace latol::qn {

/// A load-dependent summary of a subnetwork: its throughput (and
/// per-station detail) at every feasible population 1..N.
struct FescTable {
  /// rate[n-1] = subnetwork throughput with n customers, n = 1..N. The
  /// service rate of the flow-equivalent station when n customers are
  /// present.
  std::vector<double> rate;

  /// waiting(n-1, m): per-visit residence at subnetwork station m with n
  /// customers in the subnetwork.
  util::Matrix waiting;

  /// queue(n-1, m): mean queue length at subnetwork station m with n
  /// customers in the subnetwork.
  util::Matrix queue;

  [[nodiscard]] long max_population() const {
    return static_cast<long>(rate.size());
  }
};

/// Compute the FESC table of a single-class closed network by one exact
/// MVA recursion pass over populations 1..max_population (multi-server
/// stations via the same Seidmann transform the other MVA solvers use).
/// `sub.population(0)` is ignored; the table covers every population up to
/// `max_population`. Throws InvalidArgument on a multi-class network, a
/// non-positive max_population, or a subnetwork with zero total demand.
[[nodiscard]] FescTable build_fesc(const ClosedNetwork& sub,
                                   long max_population);

/// A two-level hierarchical solution, re-expanded to the original station
/// indexing so it can be compared field-by-field against a full solve.
struct TwoLevelSolution {
  /// Class throughput in cycles per time unit.
  double throughput = 0.0;

  /// Per original station: mean residence per visit. Complement stations
  /// come from the high-level model; subnetwork stations are re-derived
  /// from the FESC population distribution via Little's law.
  std::vector<double> waiting;

  /// Per original station: mean queue length.
  std::vector<double> queue;

  /// marginal[j] = P(subnetwork holds j customers), j = 0..N.
  std::vector<double> marginal;

  /// The throughput table the reduction used.
  FescTable fesc;
};

/// Solve a single-class closed network hierarchically: collapse the
/// stations flagged in `in_subnetwork` into one FESC (throughput table by
/// exact MVA), then solve the reduced model — complement stations plus the
/// load-dependent FESC — with the exact load-dependent MVA recursion.
/// Exact for product-form networks: matches solve_mva_exact to numerical
/// precision (tests pin 1e-6 on paper-sized lattices). Throws
/// InvalidArgument unless the network is single-class with customers and
/// both the subnetwork and its complement are non-empty.
[[nodiscard]] TwoLevelSolution solve_two_level(
    const ClosedNetwork& net, const std::vector<bool>& in_subnetwork);

}  // namespace latol::qn
