// Multi-class open queueing network description.
//
// The closed-network substrate (qn/network.hpp) models the paper's fixed
// thread population; this is its open counterpart: each class is an
// external Poisson stream that enters the network, visits stations, and
// departs to a sink. Stations are shared with the closed world (same
// Station struct), so mixed open/closed models (qn/open/mixed.hpp) can put
// both kinds of traffic on one set of service centers.
//
// Workloads can be described two ways, and both produce identical Jackson
// solutions (product-form metrics depend only on per-station arrival
// rates):
//  - directly, via per-class visit ratios (mean visits per job), or
//  - via a probabilistic routing matrix plus an entry distribution, from
//    which `solve_traffic_equations()` derives the visit ratios by solving
//    v = e + R^T v.
#pragma once

#include <cstddef>
#include <vector>

#include "qn/network.hpp"
#include "util/matrix.hpp"

namespace latol::qn {

/// A multi-class open queueing network: per-class Poisson arrival rates,
/// visit ratios (set directly or derived from routing), and service times.
/// Stability (utilization < 1 everywhere) is the *solver's* concern
/// (jackson.hpp raises SolverErrorCode::kUnstable); `validate()` checks
/// the description itself is well-formed.
class OpenNetwork {
 public:
  /// `stations` defines the service centers; `num_classes` open classes
  /// are created with zero arrival rate, zero visit ratios, zero service,
  /// and no routing.
  OpenNetwork(std::vector<Station> stations, std::size_t num_classes);

  [[nodiscard]] std::size_t num_stations() const { return stations_.size(); }
  [[nodiscard]] std::size_t num_classes() const { return arrival_.size(); }
  [[nodiscard]] const Station& station(std::size_t m) const;

  /// External Poisson arrival rate of class `c` (jobs per time unit).
  /// Throws InvalidArgument on a negative or non-finite rate, naming the
  /// class — bad rates are rejected at the door, not discovered as NaN
  /// utilizations three solvers later.
  void set_arrival_rate(std::size_t c, double lambda);
  [[nodiscard]] double arrival_rate(std::size_t c) const;

  /// Mean visits by a class-`c` job to station `m` between arrival and
  /// departure. Overwritten by `solve_traffic_equations()` when routing is
  /// used.
  void set_visit_ratio(std::size_t c, std::size_t m, double v);
  [[nodiscard]] double visit_ratio(std::size_t c, std::size_t m) const;

  /// Mean service time of a class-`c` job at station `m`.
  void set_service_time(std::size_t c, std::size_t m, double s);
  [[nodiscard]] double service_time(std::size_t c, std::size_t m) const;

  /// Fraction of class-`c` external arrivals that enter the network at
  /// station `m` (rows of the entry distribution need not be normalized;
  /// `solve_traffic_equations` scales by the row sum).
  void set_entry(std::size_t c, std::size_t m, double p);

  /// Probability that a class-`c` job leaving station `from` goes next to
  /// station `to`. Row deficits (1 - sum of a row) are the probability of
  /// departing to the sink.
  void set_routing(std::size_t c, std::size_t from, std::size_t to, double p);

  /// Derive visit ratios from the entry distribution and routing matrix by
  /// solving the traffic equations v = e + R^T v per class. Throws
  /// SolverError(kInvalidNetwork) when a class with arrivals has no entry
  /// station or its routing traps jobs away from the sink (the linear
  /// system is singular exactly when some visited station cannot reach the
  /// sink), with the offending class and station named.
  void solve_traffic_equations();

  /// True once set_entry/set_routing has been called; the DES simulator
  /// (sim/open_des.hpp) needs an explicit routing description to walk.
  [[nodiscard]] bool has_routing() const { return has_routing_; }

  /// Entry probability mass of class `c` at station `m` (as set; 0 when
  /// routing was never provided).
  [[nodiscard]] double entry(std::size_t c, std::size_t m) const;

  /// Routing probability of class `c` from station `from` to `to` (0 when
  /// routing was never provided).
  [[nodiscard]] double routing(std::size_t c, std::size_t from,
                               std::size_t to) const;

  /// Arrival rate of class-`c` jobs at station `m`:
  /// lambda_c x visit_ratio(c, m).
  [[nodiscard]] double station_arrival(std::size_t c, std::size_t m) const;

  /// Total offered load per server at station `m`:
  /// sum_c station_arrival(c, m) x s_{c,m} / servers. The quantity the
  /// stability check compares against 1.
  [[nodiscard]] double offered_load(std::size_t m) const;

  /// Throws InvalidArgument unless the description is well-formed: at
  /// least one class has a positive arrival rate, and every class with
  /// arrivals has positive total visits. (Rates and ratios are already
  /// range-checked at set time.) When routing was provided, also verifies
  /// every station a job can occupy can reach the sink.
  void validate() const;

 private:
  std::vector<Station> stations_;
  std::vector<double> arrival_;
  util::Matrix visits_;   // classes x stations
  util::Matrix service_;  // classes x stations
  util::Matrix entry_;    // classes x stations; meaningful iff has_routing_
  /// Per-class routing matrices (stations x stations); empty vector until
  /// the first set_routing/set_entry call.
  std::vector<util::Matrix> routing_;
  bool has_routing_ = false;

  void ensure_routing_storage();
  /// Stations from which the sink is unreachable under class-`c` routing;
  /// empty when all can drain.
  [[nodiscard]] std::vector<std::size_t> sink_unreachable(std::size_t c) const;
};

}  // namespace latol::qn
