// Product-form solver for open (Jackson/BCMP) networks.
//
// Once per-station arrival rates are known (from the traffic equations),
// an open product-form network decomposes: every station behaves as an
// independent M/M/m queue fed at its aggregate arrival rate. The solver
// computes per-station Erlang-C waiting, per-class residence and queue
// lengths, and end-to-end response times — after refusing outright to
// "solve" an unstable network (offered load >= 1 anywhere), because an
// unstable open network has no steady state to report.
#pragma once

#include <cstddef>
#include <vector>

#include "qn/open/open_network.hpp"
#include "util/matrix.hpp"

namespace latol::qn {

/// Steady-state measures of an open network, shaped like MvaSolution so
/// open and closed results can be compared side by side in tests.
struct OpenSolution {
  /// waiting(c, m): mean residence time (queueing + service) of a class-c
  /// job per visit to station m.
  util::Matrix waiting;

  /// queue_length(c, m): time-average number of class-c jobs at station m
  /// (including any in service), by Little's law.
  util::Matrix queue_length;

  /// Per-station expected busy servers: sum over classes of
  /// arrival rate x demand (same convention as MvaSolution::utilization).
  std::vector<double> utilization;

  /// Per-station offered load per server (the stability margin: every
  /// queueing station has offered_load < 1, or the solver threw).
  std::vector<double> offered_load;

  /// Per-class end-to-end response time: sum_m v_{c,m} x waiting(c, m).
  std::vector<double> response_time;

  /// Total jobs at station m over all classes.
  [[nodiscard]] double station_queue(std::size_t m) const {
    double total = 0.0;
    for (std::size_t c = 0; c < queue_length.rows(); ++c)
      total += queue_length(c, m);
    return total;
  }
};

/// Erlang-C probability that an arriving job must wait in an M/M/m queue
/// with `servers` servers and offered load `offered` = lambda x s (in
/// servers' worth of work; must be < servers). Computed via the
/// numerically stable Erlang-B recurrence.
[[nodiscard]] double erlang_c(int servers, double offered);

/// Solve `net` exactly (product form). Validates the network, then throws
/// SolverError(kUnstable) naming the first saturated station when any
/// queueing station's offered load is >= 1 per server — fail fast instead
/// of diverging. Stations visited by classes with differing service times
/// use the aggregate mean service time for the waiting term (the same
/// class-independence caveat as ClosedNetwork::is_product_form).
[[nodiscard]] OpenSolution solve_jackson(const OpenNetwork& net);

}  // namespace latol::qn
