#include "qn/open/mixed.hpp"

#include <cmath>
#include <sstream>

#include "qn/solver_error.hpp"
#include "util/error.hpp"

namespace latol::qn {

MixedReport solve_mixed(const ClosedNetwork& closed, const OpenNetwork& open,
                        const RobustOptions& options) {
  const std::size_t stations = closed.num_stations();
  LATOL_REQUIRE(open.num_stations() == stations,
                "mixed network station counts differ: closed has "
                    << stations << ", open has " << open.num_stations());
  for (std::size_t m = 0; m < stations; ++m) {
    LATOL_REQUIRE(closed.station(m).kind == open.station(m).kind &&
                      closed.station(m).servers == open.station(m).servers,
                  "mixed network station " << m << " ("
                                           << closed.station(m).name
                                           << ") differs between the closed "
                                              "and open descriptions");
  }
  open.validate();

  // Open classes first: per-station open load, refusing saturation.
  std::vector<double> open_load(stations, 0.0);
  for (std::size_t m = 0; m < stations; ++m) {
    open_load[m] = open.offered_load(m);
    if (closed.station(m).kind == StationKind::kQueueing &&
        open_load[m] >= 1.0) {
      std::ostringstream msg;
      msg << "open traffic alone saturates station "
          << closed.station(m).name << " (open load " << open_load[m]
          << " >= 1 per server); no service capacity remains for the "
             "closed classes";
      throw SolverError(SolverErrorCode::kUnstable, msg.str());
    }
  }

  // Closed classes see service stretched by the open competition.
  MixedReport report{.closed = {},
                     .open = {},
                     .open_load = open_load,
                     .total_utilization = std::vector<double>(stations, 0.0),
                     .inflated = closed};
  for (std::size_t m = 0; m < stations; ++m) {
    if (closed.station(m).kind != StationKind::kQueueing) continue;
    if (open_load[m] <= 0.0) continue;
    const double inflation = 1.0 / (1.0 - open_load[m]);
    for (std::size_t c = 0; c < closed.num_classes(); ++c) {
      report.inflated.set_service_time(
          c, m, closed.service_time(c, m) * inflation);
    }
  }
  report.closed = robust_solve(report.inflated, options);

  // Open metrics: Jackson residence, then the closed-interference
  // correction at queueing stations. N_closed is the mean closed queue at
  // the station from the inflated solve (already the true mixed value).
  report.open = solve_jackson(open);
  if (report.closed.ok()) {
    for (std::size_t m = 0; m < stations; ++m) {
      if (closed.station(m).kind != StationKind::kQueueing) continue;
      const double n_closed = report.closed.solution.station_queue(m);
      const double servers =
          static_cast<double>(closed.station(m).servers);
      for (std::size_t c = 0; c < open.num_classes(); ++c) {
        if (open.visit_ratio(c, m) <= 0.0 || open.arrival_rate(c) <= 0.0)
          continue;
        const double s = open.service_time(c, m);
        const double w = s * (servers - 1.0) / servers +
                         (s / servers) * (1.0 + n_closed) /
                             (1.0 - open_load[m]);
        report.open.response_time[c] +=
            open.visit_ratio(c, m) * (w - report.open.waiting(c, m));
        report.open.waiting(c, m) = w;
        report.open.queue_length(c, m) = open.station_arrival(c, m) * w;
      }
    }
  }

  // Physical utilization: closed throughput x uninflated demand plus open
  // offered work, never exceeding the station's servers.
  for (std::size_t m = 0; m < stations; ++m) {
    double busy = open_load[m] * static_cast<double>(open.station(m).servers);
    if (report.closed.ok()) {
      for (std::size_t c = 0; c < closed.num_classes(); ++c) {
        busy += report.closed.solution.throughput[c] * closed.demand(c, m);
      }
    }
    report.total_utilization[m] =
        std::min(busy, static_cast<double>(closed.station(m).servers));
  }
  return report;
}

}  // namespace latol::qn
