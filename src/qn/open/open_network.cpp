#include "qn/open/open_network.hpp"

#include <cmath>
#include <sstream>

#include "qn/solver_error.hpp"
#include "util/error.hpp"

namespace latol::qn {

OpenNetwork::OpenNetwork(std::vector<Station> stations,
                         std::size_t num_classes)
    : stations_(std::move(stations)),
      arrival_(num_classes, 0.0),
      visits_(num_classes, stations_.size(), 0.0),
      service_(num_classes, stations_.size(), 0.0),
      entry_(num_classes, stations_.size(), 0.0) {
  LATOL_REQUIRE(!stations_.empty(), "open network needs at least one station");
  LATOL_REQUIRE(num_classes > 0, "open network needs at least one class");
  for (const Station& st : stations_) {
    LATOL_REQUIRE(st.servers >= 1,
                  "station " << st.name << " has " << st.servers
                             << " servers");
  }
}

const Station& OpenNetwork::station(std::size_t m) const {
  LATOL_REQUIRE(m < stations_.size(), "station index " << m);
  return stations_[m];
}

void OpenNetwork::set_arrival_rate(std::size_t c, double lambda) {
  LATOL_REQUIRE(c < num_classes(), "class index " << c);
  LATOL_REQUIRE(std::isfinite(lambda),
                "class " << c << " arrival rate is not finite (" << lambda
                         << "); open streams need a real Poisson rate");
  LATOL_REQUIRE(lambda >= 0.0,
                "class " << c << " arrival rate is negative (" << lambda
                         << "); jobs cannot arrive at a negative rate");
  arrival_[c] = lambda;
}

double OpenNetwork::arrival_rate(std::size_t c) const {
  LATOL_REQUIRE(c < num_classes(), "class index " << c);
  return arrival_[c];
}

void OpenNetwork::set_visit_ratio(std::size_t c, std::size_t m, double v) {
  LATOL_REQUIRE(v >= 0.0 && std::isfinite(v), "visit ratio " << v);
  visits_(c, m) = v;
}

double OpenNetwork::visit_ratio(std::size_t c, std::size_t m) const {
  return visits_(c, m);
}

void OpenNetwork::set_service_time(std::size_t c, std::size_t m, double s) {
  LATOL_REQUIRE(s >= 0.0 && std::isfinite(s), "service time " << s);
  service_(c, m) = s;
}

double OpenNetwork::service_time(std::size_t c, std::size_t m) const {
  return service_(c, m);
}

void OpenNetwork::ensure_routing_storage() {
  if (!has_routing_) {
    routing_.assign(num_classes(),
                    util::Matrix(num_stations(), num_stations(), 0.0));
    has_routing_ = true;
  }
}

void OpenNetwork::set_entry(std::size_t c, std::size_t m, double p) {
  LATOL_REQUIRE(c < num_classes(), "class index " << c);
  LATOL_REQUIRE(p >= 0.0 && std::isfinite(p),
                "class " << c << " entry probability at station " << m
                         << " is " << p);
  ensure_routing_storage();
  entry_(c, m) = p;
}

void OpenNetwork::set_routing(std::size_t c, std::size_t from, std::size_t to,
                              double p) {
  LATOL_REQUIRE(c < num_classes(), "class index " << c);
  LATOL_REQUIRE(from < num_stations() && to < num_stations(),
                "routing (" << from << " -> " << to << ") out of range");
  LATOL_REQUIRE(p >= 0.0 && p <= 1.0 && std::isfinite(p),
                "class " << c << " routing probability " << from << " -> "
                         << to << " is " << p << "; must lie in [0, 1]");
  ensure_routing_storage();
  routing_[c](from, to) = p;
}

std::vector<std::size_t> OpenNetwork::sink_unreachable(std::size_t c) const {
  const std::size_t n = num_stations();
  // Reverse reachability from "can leave": a station whose routing row sums
  // to < 1 departs directly; anything that can reach such a station drains
  // eventually. Everything else traps jobs forever.
  std::vector<char> drains(n, 0);
  const util::Matrix& r = routing_[c];
  for (std::size_t m = 0; m < n; ++m) {
    double row = 0.0;
    for (std::size_t to = 0; to < n; ++to) row += r(m, to);
    if (row < 1.0 - 1e-12) drains[m] = 1;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t m = 0; m < n; ++m) {
      if (drains[m]) continue;
      for (std::size_t to = 0; to < n; ++to) {
        if (r(m, to) > 0.0 && drains[to]) {
          drains[m] = 1;
          changed = true;
          break;
        }
      }
    }
  }
  std::vector<std::size_t> trapped;
  for (std::size_t m = 0; m < n; ++m) {
    if (!drains[m]) trapped.push_back(m);
  }
  return trapped;
}

void OpenNetwork::solve_traffic_equations() {
  LATOL_REQUIRE(has_routing_,
                "solve_traffic_equations needs set_entry/set_routing first");
  const std::size_t n = num_stations();
  for (std::size_t c = 0; c < num_classes(); ++c) {
    if (arrival_[c] <= 0.0) continue;
    double entry_sum = 0.0;
    for (std::size_t m = 0; m < n; ++m) entry_sum += entry_(c, m);
    if (entry_sum <= 0.0) {
      std::ostringstream msg;
      msg << "class " << c << " has arrival rate " << arrival_[c]
          << " but no entry station (set_entry all zero)";
      throw SolverError(SolverErrorCode::kInvalidNetwork, msg.str());
    }
    const util::Matrix& r = routing_[c];
    for (std::size_t m = 0; m < n; ++m) {
      double row = 0.0;
      for (std::size_t to = 0; to < n; ++to) row += r(m, to);
      if (row > 1.0 + 1e-12) {
        std::ostringstream msg;
        msg << "class " << c << " routing out of station "
            << stations_[m].name << " sums to " << row
            << " (> 1); probabilities of one departure must not exceed 1";
        throw SolverError(SolverErrorCode::kInvalidNetwork, msg.str());
      }
    }
    const std::vector<std::size_t> trapped = sink_unreachable(c);
    if (!trapped.empty()) {
      std::ostringstream msg;
      msg << "class " << c << " routing traps jobs at station "
          << stations_[trapped.front()].name << " (and "
          << (trapped.size() - 1)
          << " more): the sink is unreachable, so the traffic equations "
             "have no solution";
      throw SolverError(SolverErrorCode::kInvalidNetwork, msg.str());
    }
    // v = e + R^T v  <=>  (I - R^T) v = e, with e the normalized entry row.
    util::Matrix a(n, n, 0.0);
    std::vector<double> e(n, 0.0);
    for (std::size_t row = 0; row < n; ++row) {
      a(row, row) = 1.0;
      for (std::size_t col = 0; col < n; ++col) a(row, col) -= r(col, row);
      e[row] = entry_(c, row) / entry_sum;
    }
    const std::vector<double> v = util::solve_linear_system(std::move(a), e);
    for (std::size_t m = 0; m < n; ++m) {
      // Elimination round-off can leave tiny negative visits at unvisited
      // stations; clamp rather than propagate -1e-18 into demands.
      visits_(c, m) = v[m] > 0.0 ? v[m] : 0.0;
    }
  }
}

double OpenNetwork::entry(std::size_t c, std::size_t m) const {
  if (!has_routing_) return 0.0;
  return entry_(c, m);
}

double OpenNetwork::routing(std::size_t c, std::size_t from,
                            std::size_t to) const {
  if (!has_routing_) return 0.0;
  LATOL_REQUIRE(c < num_classes(), "class index " << c);
  return routing_[c](from, to);
}

double OpenNetwork::station_arrival(std::size_t c, std::size_t m) const {
  return arrival_[c] * visits_(c, m);
}

double OpenNetwork::offered_load(std::size_t m) const {
  double load = 0.0;
  for (std::size_t c = 0; c < num_classes(); ++c)
    load += station_arrival(c, m) * service_(c, m);
  return load / static_cast<double>(stations_[m].servers);
}

void OpenNetwork::validate() const {
  double total_rate = 0.0;
  for (const double lambda : arrival_) total_rate += lambda;
  LATOL_REQUIRE(total_rate > 0.0,
                "open network needs at least one class with a positive "
                "arrival rate");
  for (std::size_t c = 0; c < num_classes(); ++c) {
    if (arrival_[c] <= 0.0) continue;
    double total_visits = 0.0;
    for (std::size_t m = 0; m < num_stations(); ++m)
      total_visits += visits_(c, m);
    LATOL_REQUIRE(total_visits > 0.0,
                  "class " << c << " has arrival rate " << arrival_[c]
                           << " but zero total visits; set visit ratios or "
                              "routing first");
  }
  if (has_routing_) {
    for (std::size_t c = 0; c < num_classes(); ++c) {
      if (arrival_[c] <= 0.0) continue;
      const std::vector<std::size_t> trapped = sink_unreachable(c);
      LATOL_REQUIRE(trapped.empty(),
                    "class " << c << " routing traps jobs at station "
                             << stations_[trapped.front()].name
                             << ": the sink is unreachable");
    }
  }
}

}  // namespace latol::qn
