// Mixed open/closed (BCMP) networks.
//
// Standard mixed-network decomposition (Lazowska et al. ch. 7): open
// classes see the stations first and claim their bandwidth outright —
// closed classes then compete for what is left, which is modeled by
// inflating every closed service time at a queueing station by
// 1 / (1 - rho_open). The inflated closed network is solved by the usual
// robust chain (AMVA -> Linearizer -> exact MVA -> bounds), and open
// waiting times are corrected afterwards for the closed jobs they queue
// behind. Exact for single-server product-form networks; the documented
// deviations (multi-server Seidmann handling) live in DESIGN.md §12.
#pragma once

#include <vector>

#include "qn/network.hpp"
#include "qn/open/jackson.hpp"
#include "qn/open/open_network.hpp"
#include "qn/robust.hpp"

namespace latol::qn {

/// What solve_mixed() produced: the closed-class report (on the inflated
/// network), the open-class metrics (corrected for closed interference),
/// and the combined per-station load.
struct MixedReport {
  /// Closed-class solve of the inflated network, with full provenance
  /// (solver, attempts, invariants) from robust_solve. Throughputs and
  /// waiting times are the closed classes' true mixed-network values;
  /// `closed.solution.utilization` is the *inflated* utilization — use
  /// `total_utilization` for physical busy-server counts.
  SolveReport closed;

  /// Open-class metrics with waiting corrected for closed queue contents:
  /// W_open = s (m-1)/m + (s/m)(1 + N_closed) / (1 - rho_open) at an
  /// m-server queueing station (the exact mixed formula when m = 1).
  OpenSolution open;

  /// Per-station open-only offered load per server (each < 1, or
  /// solve_mixed threw kUnstable).
  std::vector<double> open_load;

  /// Per-station expected busy servers from both worlds: closed
  /// throughput x uninflated demand, plus the open offered work.
  std::vector<double> total_utilization;

  /// The closed network the closed classes actually saw (service times
  /// inflated by 1/(1 - rho_open) at queueing stations). Kept for
  /// invariant checks and tests.
  ClosedNetwork inflated;

  [[nodiscard]] bool ok() const { return closed.ok(); }
};

/// Solve the mixed network formed by `closed` and `open` sharing one
/// station set. The two descriptions must agree station-for-station on
/// kind and server count. Throws SolverError(kUnstable) when the open
/// traffic alone saturates a queueing station; closed-solver failures are
/// reported through `MixedReport::closed.error`, never thrown.
[[nodiscard]] MixedReport solve_mixed(const ClosedNetwork& closed,
                                      const OpenNetwork& open,
                                      const RobustOptions& options = {});

}  // namespace latol::qn
