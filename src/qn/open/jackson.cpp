#include "qn/open/jackson.hpp"

#include <cmath>
#include <sstream>

#include "qn/solver_error.hpp"
#include "util/error.hpp"

namespace latol::qn {

double erlang_c(int servers, double offered) {
  LATOL_REQUIRE(servers >= 1, "erlang_c needs at least one server");
  LATOL_REQUIRE(offered >= 0.0 && std::isfinite(offered),
                "erlang_c offered load " << offered);
  const double m = static_cast<double>(servers);
  LATOL_REQUIRE(offered < m,
                "erlang_c offered load " << offered << " >= " << servers
                                         << " servers (unstable queue)");
  if (offered == 0.0) return 0.0;
  // Erlang-B recurrence: B(0) = 1, B(k) = a B(k-1) / (k + a B(k-1)).
  double b = 1.0;
  for (int k = 1; k <= servers; ++k) {
    b = offered * b / (static_cast<double>(k) + offered * b);
  }
  const double rho = offered / m;
  return b / (1.0 - rho * (1.0 - b));
}

OpenSolution solve_jackson(const OpenNetwork& net) {
  net.validate();
  const std::size_t classes = net.num_classes();
  const std::size_t stations = net.num_stations();

  OpenSolution sol;
  sol.waiting = util::Matrix(classes, stations, 0.0);
  sol.queue_length = util::Matrix(classes, stations, 0.0);
  sol.utilization.assign(stations, 0.0);
  sol.offered_load.assign(stations, 0.0);
  sol.response_time.assign(classes, 0.0);

  for (std::size_t m = 0; m < stations; ++m) {
    const Station& st = net.station(m);
    double lambda_m = 0.0;  // aggregate arrival rate at m
    double work_m = 0.0;    // aggregate offered work lambda x s
    for (std::size_t c = 0; c < classes; ++c) {
      const double a = net.station_arrival(c, m);
      lambda_m += a;
      work_m += a * net.service_time(c, m);
    }
    const double servers = static_cast<double>(st.servers);
    sol.offered_load[m] = work_m / servers;
    sol.utilization[m] = work_m;

    if (st.kind == StationKind::kQueueing && sol.offered_load[m] >= 1.0) {
      std::ostringstream msg;
      msg << "station " << st.name << " is saturated: offered load "
          << work_m << " over " << st.servers
          << " server(s) gives utilization " << sol.offered_load[m]
          << " >= 1; the open network has no steady state (reduce arrival "
             "rates or add capacity)";
      throw SolverError(SolverErrorCode::kUnstable, msg.str());
    }

    // Per-visit residence. Delay stations never queue; queueing stations
    // add the M/M/m Erlang-C wait computed at the aggregate mean service.
    double wait_q = 0.0;
    if (st.kind == StationKind::kQueueing && lambda_m > 0.0 &&
        work_m > 0.0) {
      const double s_bar = work_m / lambda_m;
      const double p_wait = erlang_c(st.servers, work_m);
      wait_q = p_wait * s_bar / (servers - work_m);
    }
    for (std::size_t c = 0; c < classes; ++c) {
      const double v = net.visit_ratio(c, m);
      if (v <= 0.0 || net.arrival_rate(c) <= 0.0) continue;
      const double w = net.service_time(c, m) +
                       (st.kind == StationKind::kQueueing ? wait_q : 0.0);
      sol.waiting(c, m) = w;
      sol.queue_length(c, m) = net.station_arrival(c, m) * w;
      sol.response_time[c] += v * w;
    }
  }
  return sol;
}

}  // namespace latol::qn
