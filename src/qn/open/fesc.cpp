#include "qn/open/fesc.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "qn/solver_error.hpp"
#include "util/error.hpp"

namespace latol::qn {

FescTable build_fesc(const ClosedNetwork& sub, long max_population) {
  LATOL_REQUIRE(sub.num_classes() == 1,
                "build_fesc needs a single-class subnetwork, got "
                    << sub.num_classes() << " classes");
  LATOL_REQUIRE(max_population >= 1,
                "build_fesc needs max_population >= 1, got "
                    << max_population);
  LATOL_REQUIRE(sub.total_demand(0) > 0.0,
                "build_fesc subnetwork has zero total demand");

  const std::size_t stations = sub.num_stations();
  const auto n_max = static_cast<std::size_t>(max_population);

  FescTable table;
  table.rate.assign(n_max, 0.0);
  table.waiting = util::Matrix(n_max, stations, 0.0);
  table.queue = util::Matrix(n_max, stations, 0.0);

  // Exact single-class MVA over populations 1..N, multi-server stations
  // via the Seidmann transform (fixed delay s(m-1)/m plus a server at
  // s/m), matching the closed solvers so the reduction is exact w.r.t.
  // the same station model.
  std::vector<double> seidmann_fixed(stations, 0.0);
  std::vector<double> seidmann_rate(stations, 0.0);
  for (std::size_t m = 0; m < stations; ++m) {
    const double s = sub.service_time(0, m);
    const auto servers = static_cast<double>(sub.station(m).servers);
    if (sub.station(m).kind == StationKind::kQueueing) {
      seidmann_fixed[m] = s * (servers - 1.0) / servers;
      seidmann_rate[m] = s / servers;
    }
  }

  std::vector<double> queue_prev(stations, 0.0);
  for (std::size_t n = 1; n <= n_max; ++n) {
    double cycle = 0.0;
    for (std::size_t m = 0; m < stations; ++m) {
      const double w =
          sub.station(m).kind == StationKind::kQueueing
              ? seidmann_fixed[m] +
                    seidmann_rate[m] * (1.0 + queue_prev[m])
              : sub.service_time(0, m);
      table.waiting(n - 1, m) = w;
      cycle += sub.visit_ratio(0, m) * w;
    }
    const double x = static_cast<double>(n) / cycle;
    table.rate[n - 1] = x;
    for (std::size_t m = 0; m < stations; ++m) {
      const double q = x * sub.visit_ratio(0, m) * table.waiting(n - 1, m);
      table.queue(n - 1, m) = q;
      queue_prev[m] = q;
    }
  }
  return table;
}

TwoLevelSolution solve_two_level(const ClosedNetwork& net,
                                 const std::vector<bool>& in_subnetwork) {
  LATOL_REQUIRE(net.num_classes() == 1,
                "solve_two_level needs a single-class network, got "
                    << net.num_classes() << " classes");
  LATOL_REQUIRE(in_subnetwork.size() == net.num_stations(),
                "in_subnetwork has " << in_subnetwork.size()
                                     << " flags for " << net.num_stations()
                                     << " stations");
  net.validate();

  const std::size_t stations = net.num_stations();
  std::vector<std::size_t> sub_idx;
  std::vector<std::size_t> comp_idx;
  for (std::size_t m = 0; m < stations; ++m) {
    (in_subnetwork[m] ? sub_idx : comp_idx).push_back(m);
  }
  LATOL_REQUIRE(!sub_idx.empty(),
                "solve_two_level subnetwork is empty; nothing to collapse");
  LATOL_REQUIRE(!comp_idx.empty(),
                "solve_two_level complement is empty; use a plain solver "
                "for the whole network");

  const long population = net.population(0);

  // Shorted network: the subnetwork alone, original visit ratios, solved
  // for every population it could hold.
  std::vector<Station> sub_stations;
  sub_stations.reserve(sub_idx.size());
  for (const std::size_t m : sub_idx) sub_stations.push_back(net.station(m));
  ClosedNetwork sub(std::move(sub_stations), 1);
  sub.set_population(0, population);
  for (std::size_t i = 0; i < sub_idx.size(); ++i) {
    sub.set_visit_ratio(0, i, net.visit_ratio(0, sub_idx[i]));
    sub.set_service_time(0, i, net.service_time(0, sub_idx[i]));
  }

  TwoLevelSolution out;
  out.fesc = build_fesc(sub, population);
  for (long n = 1; n <= population; ++n) {
    if (!(out.fesc.rate[static_cast<std::size_t>(n) - 1] > 0.0)) {
      throw SolverError(SolverErrorCode::kNumerical,
                        "FESC throughput is not positive at population " +
                            std::to_string(n));
    }
  }

  // High-level model: complement stations as themselves (Seidmann for
  // multi-server) plus one load-dependent station with rate(j) from the
  // table, visit ratio 1. Exact load-dependent MVA with the FESC marginal
  // population probabilities p(j | n).
  const std::size_t comp = comp_idx.size();
  std::vector<double> comp_fixed(comp, 0.0);
  std::vector<double> comp_rate(comp, 0.0);
  std::vector<double> comp_visits(comp, 0.0);
  std::vector<char> comp_queueing(comp, 0);
  for (std::size_t i = 0; i < comp; ++i) {
    const std::size_t m = comp_idx[i];
    const double s = net.service_time(0, m);
    comp_visits[i] = net.visit_ratio(0, m);
    if (net.station(m).kind == StationKind::kQueueing) {
      const auto servers = static_cast<double>(net.station(m).servers);
      comp_fixed[i] = s * (servers - 1.0) / servers;
      comp_rate[i] = s / servers;
      comp_queueing[i] = 1;
    } else {
      comp_fixed[i] = s;
    }
  }

  const auto n_max = static_cast<std::size_t>(population);
  std::vector<double> comp_queue(comp, 0.0);
  std::vector<double> comp_wait(comp, 0.0);
  std::vector<double> p_prev(n_max + 1, 0.0);  // p(j | n-1)
  std::vector<double> p_cur(n_max + 1, 0.0);   // p(j | n)
  p_prev[0] = 1.0;
  double x = 0.0;
  double w_fesc = 0.0;
  for (std::size_t n = 1; n <= n_max; ++n) {
    w_fesc = 0.0;
    for (std::size_t j = 1; j <= n; ++j) {
      w_fesc += static_cast<double>(j) / out.fesc.rate[j - 1] * p_prev[j - 1];
    }
    double cycle = w_fesc;  // FESC visit ratio is 1
    for (std::size_t i = 0; i < comp; ++i) {
      comp_wait[i] =
          comp_queueing[i]
              ? comp_fixed[i] + comp_rate[i] * (1.0 + comp_queue[i])
              : comp_fixed[i];
      cycle += comp_visits[i] * comp_wait[i];
    }
    x = static_cast<double>(n) / cycle;
    for (std::size_t i = 0; i < comp; ++i) {
      comp_queue[i] = x * comp_visits[i] * comp_wait[i];
    }
    double tail = 0.0;
    for (std::size_t j = n; j >= 1; --j) {
      p_cur[j] = x / out.fesc.rate[j - 1] * p_prev[j - 1];
      tail += p_cur[j];
    }
    // Round-off can push the tail a hair past 1; clamp the empty-subnet
    // probability at zero rather than going negative.
    p_cur[0] = tail < 1.0 ? 1.0 - tail : 0.0;
    std::swap(p_prev, p_cur);
    std::fill(p_cur.begin(), p_cur.end(), 0.0);
  }

  out.throughput = x;
  out.marginal.assign(p_prev.begin(), p_prev.end());
  out.waiting.assign(stations, 0.0);
  out.queue.assign(stations, 0.0);
  for (std::size_t i = 0; i < comp; ++i) {
    out.waiting[comp_idx[i]] = comp_wait[i];
    out.queue[comp_idx[i]] = comp_queue[i];
  }
  // Subnetwork detail: condition on the FESC population. Given j customers
  // inside, the subnetwork behaves as its own closed network with j
  // customers (the Norton conditional-distribution property), so station
  // queues are the table's rows weighted by the marginal.
  for (std::size_t i = 0; i < sub_idx.size(); ++i) {
    const std::size_t m = sub_idx[i];
    double q = 0.0;
    for (std::size_t j = 1; j <= n_max; ++j) {
      q += out.marginal[j] * out.fesc.queue(j - 1, i);
    }
    out.queue[m] = q;
    const double flow = x * net.visit_ratio(0, m);
    out.waiting[m] = flow > 0.0 ? q / flow : 0.0;
  }
  return out;
}

}  // namespace latol::qn
