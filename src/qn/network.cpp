#include "qn/network.hpp"

#include <cmath>

#include "util/error.hpp"

namespace latol::qn {

ClosedNetwork::ClosedNetwork(std::vector<Station> stations,
                             std::size_t num_classes)
    : stations_(std::move(stations)),
      population_(num_classes, 0),
      visits_(num_classes, stations_.size(), 0.0),
      service_(num_classes, stations_.size(), 0.0) {
  LATOL_REQUIRE(!stations_.empty(), "network needs at least one station");
  LATOL_REQUIRE(num_classes > 0, "network needs at least one class");
  for (const Station& st : stations_) {
    LATOL_REQUIRE(st.servers >= 1,
                  "station " << st.name << " has " << st.servers
                             << " servers");
  }
}

const Station& ClosedNetwork::station(std::size_t m) const {
  LATOL_REQUIRE(m < stations_.size(), "station index " << m);
  return stations_[m];
}

void ClosedNetwork::set_population(std::size_t c, long n) {
  LATOL_REQUIRE(c < num_classes(), "class index " << c);
  LATOL_REQUIRE(n >= 0, "population must be non-negative, got " << n);
  population_[c] = n;
}

long ClosedNetwork::population(std::size_t c) const {
  LATOL_REQUIRE(c < num_classes(), "class index " << c);
  return population_[c];
}

long ClosedNetwork::total_population() const {
  long total = 0;
  for (const long n : population_) total += n;
  return total;
}

void ClosedNetwork::set_visit_ratio(std::size_t c, std::size_t m, double v) {
  LATOL_REQUIRE(v >= 0.0 && std::isfinite(v), "visit ratio " << v);
  visits_(c, m) = v;
}

double ClosedNetwork::visit_ratio(std::size_t c, std::size_t m) const {
  return visits_(c, m);
}

void ClosedNetwork::set_service_time(std::size_t c, std::size_t m, double s) {
  LATOL_REQUIRE(s >= 0.0 && std::isfinite(s), "service time " << s);
  service_(c, m) = s;
}

double ClosedNetwork::service_time(std::size_t c, std::size_t m) const {
  return service_(c, m);
}

double ClosedNetwork::demand(std::size_t c, std::size_t m) const {
  return visits_(c, m) * service_(c, m);
}

double ClosedNetwork::total_demand(std::size_t c) const {
  double total = 0.0;
  for (std::size_t m = 0; m < num_stations(); ++m) total += demand(c, m);
  return total;
}

bool ClosedNetwork::is_product_form(double rel_tol) const {
  for (std::size_t m = 0; m < num_stations(); ++m) {
    if (stations_[m].kind != StationKind::kQueueing) continue;
    double ref = -1.0;
    for (std::size_t c = 0; c < num_classes(); ++c) {
      if (visits_(c, m) <= 0.0 || population_[c] == 0) continue;
      const double s = service_(c, m);
      if (ref < 0.0) {
        ref = s;
      } else if (std::fabs(s - ref) > rel_tol * std::max(1.0, ref)) {
        return false;
      }
    }
  }
  return true;
}

void ClosedNetwork::validate() const {
  LATOL_REQUIRE(total_population() > 0,
                "closed network needs at least one customer");
  for (std::size_t c = 0; c < num_classes(); ++c) {
    if (population_[c] == 0) continue;
    LATOL_REQUIRE(total_demand(c) > 0.0,
                  "class " << c << " has customers but zero total demand");
  }
}

}  // namespace latol::qn
