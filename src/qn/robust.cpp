#include "qn/robust.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "qn/bounds.hpp"
#include "qn/mva_exact.hpp"
#include "util/error.hpp"

namespace latol::qn {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// True when every reported number is finite — a solver that "succeeded"
/// with NaNs in it did not succeed.
bool solution_is_finite(const MvaSolution& sol) {
  for (const double x : sol.throughput)
    if (!std::isfinite(x)) return false;
  for (const double x : sol.utilization)
    if (!std::isfinite(x)) return false;
  for (std::size_t c = 0; c < sol.queue_length.rows(); ++c) {
    for (std::size_t m = 0; m < sol.queue_length.cols(); ++m) {
      if (!std::isfinite(sol.queue_length(c, m)) ||
          !std::isfinite(sol.waiting(c, m)))
        return false;
    }
  }
  return true;
}

/// Reason exact MVA cannot be attempted on `net`, or empty if it can.
std::string exact_mva_gate(const ClosedNetwork& net, std::size_t max_states) {
  if (!net.is_product_form())
    return "network is not product form (class-dependent FCFS service)";
  for (std::size_t m = 0; m < net.num_stations(); ++m) {
    if (net.station(m).kind == StationKind::kQueueing &&
        net.station(m).servers > 1)
      return "multi-server queueing station " + net.station(m).name;
  }
  std::size_t states = 1;
  for (std::size_t c = 0; c < net.num_classes(); ++c) {
    const auto span = static_cast<std::size_t>(net.population(c)) + 1;
    if (states > max_states / span)
      return "population lattice exceeds " + std::to_string(max_states) +
             " states";
    states *= span;
  }
  return {};
}

/// Stable registry-timer name per chain link.
const char* solver_timer_name(SolverKind kind) {
  switch (kind) {
    case SolverKind::kAmva:
      return "qn.solver.amva";
    case SolverKind::kLinearizer:
      return "qn.solver.linearizer";
    case SolverKind::kExactMva:
      return "qn.solver.exact-mva";
    case SolverKind::kBounds:
      return "qn.solver.bounds";
    case SolverKind::kFesc:
      return "qn.solver.fesc";
  }
  return "qn.solver.unknown";
}

}  // namespace

const char* solver_kind_name(SolverKind kind) {
  switch (kind) {
    case SolverKind::kAmva:
      return "amva";
    case SolverKind::kLinearizer:
      return "linearizer";
    case SolverKind::kExactMva:
      return "exact-mva";
    case SolverKind::kBounds:
      return "bounds";
    case SolverKind::kFesc:
      return "fesc";
  }
  return "?";
}

double fixed_point_residual(const ClosedNetwork& net, const MvaSolution& sol) {
  const std::size_t C = net.num_classes();
  const std::size_t M = net.num_stations();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<double> station_total(M, 0.0);
  for (std::size_t m = 0; m < M; ++m) station_total[m] = sol.station_queue(m);

  double residual = 0.0;
  for (std::size_t c = 0; c < C; ++c) {
    const long pop = net.population(c);
    if (pop == 0) continue;
    const double nc = static_cast<double>(pop);
    double cycle = 0.0;
    std::vector<double> waiting(M, 0.0);
    for (std::size_t m = 0; m < M; ++m) {
      const double v = net.visit_ratio(c, m);
      if (v <= 0.0) continue;
      const double s = net.service_time(c, m);
      double w = s;
      if (net.station(m).kind == StationKind::kQueueing) {
        const double seen = station_total[m] - sol.queue_length(c, m) +
                            ((nc - 1.0) / nc) * sol.queue_length(c, m);
        const auto servers = static_cast<double>(net.station(m).servers);
        w = s * (servers - 1.0) / servers + (s / servers) * (1.0 + seen);
      }
      waiting[m] = w;
      cycle += v * w;
    }
    if (!(cycle > 0.0) || !std::isfinite(cycle)) return kInf;
    const double lambda = nc / cycle;
    for (std::size_t m = 0; m < M; ++m) {
      const double target = lambda * net.visit_ratio(c, m) * waiting[m];
      if (!std::isfinite(target)) return kInf;
      residual = std::max(residual, std::fabs(target - sol.queue_length(c, m)));
    }
  }
  return residual;
}

InvariantReport check_invariants(const ClosedNetwork& net,
                                 const MvaSolution& sol) {
  const std::size_t C = net.num_classes();
  const std::size_t M = net.num_stations();
  LATOL_REQUIRE(sol.throughput.size() == C &&
                    sol.queue_length.rows() == C &&
                    sol.queue_length.cols() == M &&
                    sol.utilization.size() == M,
                "solution shape does not match network ("
                    << sol.throughput.size() << " classes, "
                    << sol.utilization.size() << " stations vs " << C << "x"
                    << M << ")");

  InvariantReport report;
  auto join = [](double a, double b) {
    return std::isfinite(a) && std::isfinite(b) ? std::max(a, b)
           : std::isfinite(a)                   ? b
                                                : a;
  };

  // Little's law per class: N_c = X_c * R_c with R_c = sum_m v w. Station
  // level: n_{c,m} = X_c v_{c,m} w_{c,m}. Both relative to N_c.
  for (std::size_t c = 0; c < C; ++c) {
    const long pop = net.population(c);
    if (pop == 0) continue;
    const double nc = static_cast<double>(pop);
    double response = 0.0;
    double station_gap = 0.0;
    for (std::size_t m = 0; m < M; ++m) {
      const double v = net.visit_ratio(c, m);
      if (v <= 0.0) continue;
      response += v * sol.waiting(c, m);
      station_gap = join(
          station_gap, std::fabs(sol.throughput[c] * v * sol.waiting(c, m) -
                                 sol.queue_length(c, m)) /
                           nc);
    }
    report.littles_law_error =
        join(report.littles_law_error,
             std::fabs(nc - sol.throughput[c] * response) / nc);
    report.flow_balance_error = join(report.flow_balance_error, station_gap);
  }

  // Visit-ratio / flow-balance consistency: the reported utilization of
  // every station must equal the throughput-weighted demand through it.
  for (std::size_t m = 0; m < M; ++m) {
    double u = 0.0;
    for (std::size_t c = 0; c < C; ++c)
      u += sol.throughput[c] * net.demand(c, m);
    report.flow_balance_error =
        join(report.flow_balance_error,
             std::fabs(u - sol.utilization[m]) / std::max(1.0, std::fabs(u)));
  }

  if (!(report.littles_law_error <= InvariantReport::kWarnThreshold)) {
    std::ostringstream os;
    os << "Little's law violated: max relative error "
       << report.littles_law_error << " of N = X*R across classes";
    report.warnings.push_back(os.str());
  }
  if (!(report.flow_balance_error <= InvariantReport::kWarnThreshold)) {
    std::ostringstream os;
    os << "flow balance violated: max relative error "
       << report.flow_balance_error
       << " across station queue lengths and utilizations";
    report.warnings.push_back(os.str());
  }
  return report;
}

MvaSolution bounds_solution(const ClosedNetwork& net) {
  net.validate();
  const std::size_t C = net.num_classes();
  const std::size_t M = net.num_stations();

  MvaSolution sol;
  sol.throughput.assign(C, 0.0);
  sol.waiting = util::Matrix(C, M, 0.0);
  sol.queue_length = util::Matrix(C, M, 0.0);
  sol.utilization.assign(M, 0.0);
  sol.iterations = 0;
  sol.converged = true;  // not iterative; degradation is flagged by the report

  // Per-class optimistic bound, then a joint scale-down so the combined
  // load does not exceed any queueing station's capacity (the multi-class
  // bottleneck correction).
  for (std::size_t c = 0; c < C; ++c) {
    if (net.population(c) == 0 || net.total_demand(c) <= 0.0) continue;
    sol.throughput[c] = asymptotic_throughput_bound(net, c);
  }
  double worst = 1.0;
  for (std::size_t m = 0; m < M; ++m) {
    if (net.station(m).kind != StationKind::kQueueing) continue;
    double load = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      if (sol.throughput[c] <= 0.0) continue;
      load += sol.throughput[c] * net.demand(c, m);
    }
    if (std::isfinite(load))
      worst = std::max(worst,
                       load / static_cast<double>(net.station(m).servers));
  }
  for (std::size_t c = 0; c < C; ++c) sol.throughput[c] /= worst;

  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t m = 0; m < M; ++m) {
      if (net.visit_ratio(c, m) <= 0.0) continue;
      sol.waiting(c, m) = net.service_time(c, m);  // zero-contention estimate
      const double q = sol.throughput[c] * net.visit_ratio(c, m) *
                       sol.waiting(c, m);
      sol.queue_length(c, m) = std::isfinite(q) ? q : 0.0;
    }
  }
  for (std::size_t m = 0; m < M; ++m) {
    double u = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      if (sol.throughput[c] <= 0.0) continue;
      u += sol.throughput[c] * net.demand(c, m);
    }
    sol.utilization[m] = std::isfinite(u) ? u : 0.0;
  }
  return sol;
}

std::string SolveReport::summary() const {
  std::ostringstream os;
  if (!ok()) {
    os << "solve failed (" << solver_error_name(*error) << ")";
  } else if (degraded) {
    os << "degraded to " << solver_kind_name(solver);
  } else {
    os << "solved by " << solver_kind_name(solver);
  }
  bool first_failure = true;
  for (const SolveAttempt& a : attempts) {
    if (a.success) continue;
    os << (first_failure ? " after " : ", ") << solver_kind_name(a.solver)
       << ": "
       << (a.error ? solver_error_name(*a.error)
                   : (a.detail.empty() ? "skipped" : a.detail.c_str()));
    first_failure = false;
  }
  if (ok()) {
    os << " (" << solution.iterations << " iterations, residual " << residual
       << ")";
  }
  return os.str();
}

SolveReport robust_solve(const ClosedNetwork& net,
                         const RobustOptions& options) {
  LATOL_REQUIRE(!options.chain.empty(), "fallback chain must not be empty");
  const auto t_start = Clock::now();
  obs::Span solve_span("qn.robust_solve", "qn");

  SolveReport report;
  try {
    net.validate();
  } catch (const InvalidArgument& e) {
    SolveAttempt a;
    a.solver = options.chain.front();
    a.error = SolverErrorCode::kInvalidNetwork;
    a.detail = e.what();
    report.attempts.push_back(std::move(a));
    report.error = SolverErrorCode::kInvalidNetwork;
    report.wall_seconds = seconds_since(t_start);
    obs::observe("qn.solve.latency_seconds", report.wall_seconds);
    return report;
  }

  obs::count("qn.robust.solves");
  // The caller's cancellation token rides on AmvaOptions (the requested
  // solver's options); every fallback link honours it too — degrading past
  // a deadline would defeat its purpose.
  const util::CancelToken* cancel = options.amva.cancel;
  bool deadline_hit = false;
  for (const SolverKind link : options.chain) {
    // One span per chain link, named like its timer ("qn.solver.amva",
    // ...); fallback hops show up in the trace as sibling attempt spans.
    obs::Span attempt_span(solver_timer_name(link), "qn");
    SolveAttempt attempt;
    attempt.solver = link;
    if (options.record_traces)
      attempt.trace = obs::ConvergenceTrace(options.trace_capacity);
    const auto t_attempt = Clock::now();
    try {
      // Do not even start a link once the deadline has fired; the throw is
      // caught below and recorded like any other attempt failure.
      if (cancel != nullptr && cancel->expired()) {
        throw SolverError(SolverErrorCode::kDeadlineExceeded,
                          std::string("deadline expired before ") +
                              solver_kind_name(link) + " attempt");
      }
      MvaSolution sol;
      bool skipped = false;
      switch (link) {
        case SolverKind::kAmva: {
          AmvaOptions amva = options.amva;
          amva.trace = options.record_traces ? &attempt.trace : nullptr;
          sol = options.hints != nullptr ? solve_amva(net, amva,
                                                     *options.hints)
                                         : solve_amva(net, amva);
          break;
        }
        case SolverKind::kLinearizer: {
          LinearizerOptions lin = options.linearizer;
          lin.trace = options.record_traces ? &attempt.trace : nullptr;
          if (lin.cancel == nullptr) lin.cancel = cancel;
          sol = options.hints != nullptr ? solve_linearizer(net, lin,
                                                            *options.hints)
                                         : solve_linearizer(net, lin);
          break;
        }
        case SolverKind::kExactMva: {
          const std::string gate =
              exact_mva_gate(net, options.exact_max_states);
          if (!gate.empty()) {
            attempt.detail = "skipped: " + gate;
            skipped = true;
            break;
          }
          sol = solve_mva_exact(net, options.exact_max_states,
                                /*workers=*/0, cancel);
          break;
        }
        case SolverKind::kBounds:
          sol = bounds_solution(net);
          break;
        case SolverKind::kFesc:
          // The hierarchical solver has its own entry point
          // (core::analyze with SolveMethod::kHierarchical) and its own
          // fallback story; as a chain link it is just skipped.
          attempt.detail = "skipped: fesc runs outside the robust chain";
          skipped = true;
          break;
      }
      attempt.wall_seconds = seconds_since(t_attempt);
      if (!skipped) {
        obs::time_add(solver_timer_name(link), attempt.wall_seconds);
        attempt.iterations = sol.iterations;
        attempt_span.arg("iterations", static_cast<double>(sol.iterations));
        if (!sol.converged) {
          throw SolverError(SolverErrorCode::kIterationBudget,
                            std::string(solver_kind_name(link)) +
                                " exhausted its iteration budget (" +
                                std::to_string(sol.iterations) +
                                " iterations)");
        }
        if (!solution_is_finite(sol)) {
          throw SolverError(SolverErrorCode::kNumerical,
                            std::string(solver_kind_name(link)) +
                                " produced non-finite results");
        }
        attempt.success = true;
        report.solution = std::move(sol);
        report.solver = link;
        report.degraded = link != options.chain.front();
        report.attempts.push_back(std::move(attempt));
        break;
      }
    } catch (const SolverError& e) {
      attempt.wall_seconds = seconds_since(t_attempt);
      obs::time_add(solver_timer_name(link), attempt.wall_seconds);
      attempt.error = e.code();
      attempt.detail = e.what();
      // A deadline is terminal: the caller stopped waiting, so degrading
      // to a cheaper solver would only produce a late answer (and bounds
      // would dress it up as "degraded" instead of "deadline-exceeded").
      deadline_hit = e.code() == SolverErrorCode::kDeadlineExceeded;
    } catch (const InvalidArgument& e) {
      // A solver rejecting this (already validated) network means the
      // *solver* does not apply to it, e.g. exact MVA on non-product-form.
      attempt.wall_seconds = seconds_since(t_attempt);
      obs::time_add(solver_timer_name(link), attempt.wall_seconds);
      attempt.error = SolverErrorCode::kInvalidNetwork;
      attempt.detail = e.what();
    }
    report.attempts.push_back(std::move(attempt));
    if (deadline_hit) break;
    obs::instant("qn.robust.fallback", "qn");
  }

  const bool solved =
      !report.attempts.empty() && report.attempts.back().success;
  if (!solved) {
    // Prefer the requested solver's failure code; fall back to any link's
    // code; an all-skipped chain means the request could not apply at all.
    // A deadline trumps everything — that is what the caller observed.
    report.error = SolverErrorCode::kInvalidNetwork;
    for (const SolveAttempt& a : report.attempts) {
      if (a.error) {
        report.error = *a.error;
        break;
      }
    }
    if (deadline_hit) report.error = SolverErrorCode::kDeadlineExceeded;
    obs::count("qn.robust.failed");
    if (deadline_hit) obs::count("qn.robust.deadline");
  } else {
    report.residual = fixed_point_residual(net, report.solution);
    report.invariants = check_invariants(net, report.solution);
    if (report.degraded) obs::count("qn.robust.degraded");
    if (!report.invariants.warnings.empty())
      obs::count("qn.invariant.warnings", report.invariants.warnings.size());
  }
  report.wall_seconds = seconds_since(t_start);
  solve_span.arg("attempts", static_cast<double>(report.attempts.size()));
  solve_span.detail(solved ? solver_kind_name(report.solver) : "failed");
  obs::observe("qn.solve.latency_seconds", report.wall_seconds);
  return report;
}

}  // namespace latol::qn
