// Exact mean value analysis for closed product-form networks.
//
// The classic recursive MVA: performance at population vector N is derived
// from the exact arrival theorem — an arriving class-c customer sees the
// network in equilibrium at population N - 1_c — evaluated bottom-up over
// the whole population lattice. Exponential in the number of classes
// (prod_c (N_c + 1) lattice points), so this solver exists to validate the
// approximate solver on small systems, exactly as the paper motivates AMVA
// ("an accurate solution ... is computationally intensive").
//
// Exactness requires the product-form (BCMP) conditions; for FCFS queueing
// stations that means class-independent service times, which
// `ClosedNetwork::is_product_form()` checks and this solver enforces.
#pragma once

#include "qn/network.hpp"
#include "qn/solution.hpp"
#include "util/cancel.hpp"

namespace latol::qn {

/// Solve `net` exactly. Throws InvalidArgument when the network violates
/// the product-form conditions or the lattice would exceed `max_states`
/// population vectors (guard against accidental blow-up).
///
/// Large population-lattice levels are processed in parallel (each level
/// depends only on the previous one, and every point writes a disjoint
/// row): `workers` == 0 uses the shared pool, > 0 a transient pool of
/// that size. Results are bit-identical for every worker count.
///
/// `cancel`, when non-null, is checked once per lattice level (levels are
/// the unit of parallelism, so this is the finest granularity that cannot
/// tear a parallel region); an expired token aborts with
/// SolverError(kDeadlineExceeded).
[[nodiscard]] MvaSolution solve_mva_exact(
    const ClosedNetwork& net, std::size_t max_states = 50'000'000,
    std::size_t workers = 0, const util::CancelToken* cancel = nullptr);

}  // namespace latol::qn
