// Online statistics for simulation output analysis.
#pragma once

#include <cstddef>
#include <vector>

namespace latol::sim {

/// Welford online mean/variance accumulator for i.i.d.-ish samples
/// (per-access latencies and similar tallies).
class OnlineStats {
 public:
  void add(double x);
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal (queue lengths,
/// busy indicators). Call `set` whenever the value changes; `mean(now)`
/// integrates up to `now`.
class TimeAverage {
 public:
  explicit TimeAverage(double start_time = 0.0, double initial = 0.0)
      : value_(initial), last_change_(start_time), start_(start_time) {}

  /// Record that the signal takes value `v` from time `now` on.
  void set(double now, double v);

  /// Add `delta` to the current value at time `now`.
  void add(double now, double delta);

  /// Restart integration at `now`, keeping the current value.
  void reset(double now);

  [[nodiscard]] double value() const { return value_; }

  /// Time-average over [reset_time, now].
  [[nodiscard]] double mean(double now) const;

 private:
  double value_;
  double weighted_sum_ = 0.0;
  double last_change_;
  double start_;
};

/// Batch-means confidence intervals: split a stream of samples into `b`
/// equal batches and treat batch means as i.i.d. normal. Standard output
/// analysis for steady-state simulations.
class BatchMeans {
 public:
  explicit BatchMeans(std::size_t num_batches = 20);

  void add(double x);
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;

  /// Half-width of the (approximately) 95% confidence interval on the
  /// mean. Returns 0 until at least two batches have data.
  [[nodiscard]] double half_width_95() const;

 private:
  std::vector<double> sums_;
  std::vector<std::size_t> counts_;
  std::size_t count_ = 0;
};

}  // namespace latol::sim
