// Online statistics for simulation output analysis.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace latol::sim {

/// Welford online mean/variance accumulator for i.i.d.-ish samples
/// (per-access latencies and similar tallies).
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal (queue lengths,
/// busy indicators). Call `set` whenever the value changes; `mean(now)`
/// integrates up to `now`.
class TimeAverage {
 public:
  explicit TimeAverage(double start_time = 0.0, double initial = 0.0)
      : value_(initial), last_change_(start_time), start_(start_time) {}

  /// Record that the signal takes value `v` from time `now` on.
  /// Hot path: called for every queue-length and busy-state change the
  /// simulators record, so it lives in the header.
  void set(double now, double v) {
    LATOL_REQUIRE(now + 1e-12 >= last_change_,
                  "time went backwards: " << now << " < " << last_change_);
    weighted_sum_ += value_ * (now - last_change_);
    value_ = v;
    last_change_ = now;
  }

  /// Add `delta` to the current value at time `now`.
  void add(double now, double delta) { set(now, value_ + delta); }

  /// Restart integration at `now`, keeping the current value.
  void reset(double now);

  [[nodiscard]] double value() const { return value_; }

  /// Time-average over [reset_time, now].
  [[nodiscard]] double mean(double now) const;

 private:
  double value_;
  double weighted_sum_ = 0.0;
  double last_change_;
  double start_;
};

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (exact table through df = 30, normal tail beyond). Used for
/// replication confidence intervals, where df is small and the 1.96
/// normal approximation would understate the interval badly.
[[nodiscard]] double t_critical_95(std::size_t df);

/// Half-width of the 95% confidence interval on the mean of `stats`'
/// samples treated as i.i.d. normal: t * s / sqrt(n). Returns 0 with
/// fewer than two samples.
[[nodiscard]] double half_width_95(const OnlineStats& stats);

/// Batch-means confidence intervals: split a stream of samples into `b`
/// equal batches and treat batch means as i.i.d. normal. Standard output
/// analysis for steady-state simulations.
class BatchMeans {
 public:
  explicit BatchMeans(std::size_t num_batches = 20);

  void add(double x);
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;

  /// Half-width of the (approximately) 95% confidence interval on the
  /// mean. Returns 0 until at least two batches have data.
  [[nodiscard]] double half_width_95() const;

 private:
  std::vector<double> sums_;
  std::vector<std::size_t> counts_;
  std::size_t count_ = 0;
};

}  // namespace latol::sim
