#include "sim/calendar_queue.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace latol::sim {

namespace {

/// Smallest bucket count; kept tiny so empty queues stay cheap.
constexpr std::size_t kMinBuckets = 8;

/// Grow when the load factor exceeds 2 entries per bucket.
std::size_t grow_threshold(std::size_t nbuckets) { return 2 * nbuckets; }

/// Shrink when the load factor drops below 1/4 entry per bucket.
std::size_t shrink_threshold(std::size_t nbuckets) {
  return nbuckets > kMinBuckets ? nbuckets / 4 : 0;
}

}  // namespace

CalendarQueue::CalendarQueue()
    : buckets_(kMinBuckets),
      mask_(kMinBuckets - 1),
      grow_at_(grow_threshold(kMinBuckets)),
      shrink_at_(shrink_threshold(kMinBuckets)) {}

void CalendarQueue::check_finite(double time) {
  LATOL_REQUIRE(std::isfinite(time), "non-finite event time " << time);
}

void CalendarQueue::insert_sorted(std::vector<CalendarEntry>& bucket,
                                  CalendarEntry e) {
  const auto pos = std::upper_bound(bucket.begin(), bucket.end(), e, entry_before);
  bucket.insert(pos, e);
}

bool CalendarQueue::pop_scan(double limit, CalendarEntry& out) {
  for (int pass = 0; pass < 2; ++pass) {
    // Walk virtual buckets from the cursor: within the cursor's year the
    // bucket front is the global minimum whenever its virtual bucket
    // matches (ties share a bucket, so order can never invert).
    for (std::size_t scanned = 0; scanned <= mask_; ++scanned) {
      std::vector<CalendarEntry>& bucket = buckets_[cursor_ & mask_];
      if (!bucket.empty() && bucket_of(bucket.front().time) == cursor_) {
        if (bucket.front().time > limit) return false;
        out = bucket.front();
        bucket.erase(bucket.begin());
        --size_;
        ++ops_;
        if (size_ < shrink_at_) resize((mask_ + 1) / 2);
        return true;
      }
      ++cursor_;
    }
    // A whole year was empty: jump straight to the minimum entry's year
    // and resolve on the second pass.
    seek_min();
  }
  return false;  // unreachable: seek_min guarantees a hit on pass 2
}

void CalendarQueue::seek_min() {
  const CalendarEntry* min = nullptr;
  for (const auto& bucket : buckets_) {
    if (!bucket.empty() &&
        (min == nullptr || entry_before(bucket.front(), *min))) {
      min = &bucket.front();
    }
  }
  if (min != nullptr) cursor_ = bucket_of(min->time);
}

void CalendarQueue::resize(std::size_t nbuckets) {
  std::vector<CalendarEntry> all;
  all.reserve(size_);
  for (auto& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }

  // Re-tune the width to ~1.5x the median inter-event gap of a sorted
  // sample, so a typical bucket holds O(1) entries (measured: below ~1x
  // the pop-side empty-bucket walk grows, above ~2x the push-side sorted
  // inserts dominate). The median (not the mean) keeps one far-future
  // outlier — a warmup or horizon marker — from stretching the width
  // until every near-term event shares one bucket.
  if (all.size() >= 2) {
    std::vector<double> sample;
    const std::size_t stride = std::max<std::size_t>(1, all.size() / 64);
    for (std::size_t i = 0; i < all.size(); i += stride)
      sample.push_back(all[i].time);
    std::sort(sample.begin(), sample.end());
    std::vector<double> gaps;
    for (std::size_t i = 1; i < sample.size(); ++i) {
      const double gap = sample[i] - sample[i - 1];
      if (gap > 0.0) gaps.push_back(gap);
    }
    double width = 1.0;
    if (!gaps.empty()) {
      std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2,
                       gaps.end());
      width = 1.5 * gaps[gaps.size() / 2];
    }
    if (std::isfinite(width) && width > 1e-300) {
      width_ = width;
      inv_width_ = 1.0 / width;
    }
  }

  buckets_.assign(nbuckets, {});
  mask_ = nbuckets - 1;
  grow_at_ = grow_threshold(nbuckets);
  shrink_at_ = shrink_threshold(nbuckets);
  for (const CalendarEntry& e : all)
    insert_sorted(buckets_[bucket_of(e.time) & mask_], e);
  if (size_ > 0) seek_min();
}

}  // namespace latol::sim
