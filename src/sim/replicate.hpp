// Parallel independent replications with deterministic early stopping.
//
// One simulation run is a point estimate; the paper's validation tables
// quote means over independent replications. This harness fans
// replications out over util::parallel_for while keeping the determinism
// contract of DESIGN.md §10: the returned result is bitwise identical
// for a given base seed at ANY worker count, including worker count 1.
//
// How that works (DESIGN.md §13):
//  - Replication i always runs with seed base_seed + i, in its own
//    simulator instance; nothing mutable is shared between replications.
//  - Replications execute in fixed-size rounds (plan.round_size, NOT the
//    worker count). Every round runs to completion, then the stopping
//    rule is evaluated *sequentially by replication index* over the
//    completed prefix: the accepted prefix is the shortest [0, n) with
//    n >= min_reps whose 95% CI half-width meets the relative target.
//  - Replications past the accepted prefix are speculative: their cost
//    was paid but their results are discarded, so neither scheduling
//    order nor worker count can leak into the output.
//
// The price of determinism is bounded speculation waste (at most
// round_size - 1 discarded runs); the benefit is that `latol simulate
// --reps N` reproduces exactly, and a failure report's [seed=N] tag
// identifies one replication regardless of how many threads ran it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <utility>
#include <vector>

#include "obs/span.hpp"
#include "sim/mms_des.hpp"
#include "sim/mms_petri.hpp"
#include "sim/open_des.hpp"
#include "sim/stats.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace latol::sim {

/// How many replications to run and when to stop early.
struct ReplicationPlan {
  std::size_t min_reps = 2;   ///< never stop before this many
  std::size_t max_reps = 8;   ///< hard cap
  /// Stop once hw95 <= target_rel_half_width * |mean| of the metric
  /// (0 disables early stopping: exactly max_reps run).
  double target_rel_half_width = 0.0;
  /// parallel_for worker count (0 = shared pool). Affects wall time
  /// only, never results.
  std::size_t workers = 0;
  /// Replications launched per round; the speculation window.
  std::size_t round_size = 4;
};

/// Replication results plus summary statistics of the chosen metric.
template <typename Result>
struct ReplicationRun {
  /// The accepted prefix, in replication order (seed base + i).
  std::vector<Result> runs;
  double mean = 0.0;           ///< metric mean over `runs`
  double half_width_95 = 0.0;  ///< 95% CI half-width (Student t)
  bool target_met = false;     ///< CI target reached within max_reps
  std::size_t speculative_discarded = 0;  ///< runs paid for but dropped
};

/// Run up to `plan.max_reps` replications of `run_one(i)` and summarize
/// `metric(result)` over the accepted prefix (see file comment for the
/// determinism argument). `run_one` must be safe to call concurrently
/// for distinct indices; exceptions are captured and rethrown for the
/// lowest failing index once its round completes.
template <typename Result, typename RunOne, typename Metric>
ReplicationRun<Result> run_replications(const ReplicationPlan& plan,
                                        RunOne&& run_one, Metric&& metric) {
  LATOL_REQUIRE(plan.min_reps >= 1, "min_reps " << plan.min_reps);
  LATOL_REQUIRE(plan.max_reps >= plan.min_reps,
                "max_reps " << plan.max_reps << " < min_reps "
                            << plan.min_reps);
  LATOL_REQUIRE(plan.round_size >= 1, "round_size " << plan.round_size);
  LATOL_REQUIRE(plan.target_rel_half_width >= 0.0,
                "target_rel_half_width " << plan.target_rel_half_width);

  std::vector<Result> results(plan.max_reps);
  std::vector<std::exception_ptr> errors(plan.max_reps);
  OnlineStats acc;
  ReplicationRun<Result> out;

  // Observability only — rounds/replications carry no result data, so
  // tracing cannot perturb the determinism contract above.
  obs::Span rep_span("sim.replications", "sim");
  const std::uint64_t rep_span_id = rep_span.id();

  std::size_t accepted = 0;  // prefix length once the rule fires
  for (std::size_t base = 0; base < plan.max_reps && accepted == 0;
       base += plan.round_size) {
    const std::size_t batch =
        std::min(plan.round_size, plan.max_reps - base);
    obs::Span round_span("sim.round", "sim", rep_span_id);
    round_span.arg("base", static_cast<double>(base));
    round_span.arg("batch", static_cast<double>(batch));
    const std::uint64_t round_span_id = round_span.id();
    util::parallel_for(
        batch,
        [&](std::size_t k) {
          obs::Span one_span("sim.replication", "sim", round_span_id);
          one_span.arg("index", static_cast<double>(base + k));
          try {
            results[base + k] = run_one(base + k);
          } catch (...) {
            errors[base + k] = std::current_exception();
          }
        },
        plan.workers);
    // Apply the stopping rule sequentially by index over the new
    // completions; the first index that satisfies it (or fails) wins,
    // so the outcome is independent of scheduling.
    for (std::size_t k = 0; k < batch; ++k) {
      const std::size_t i = base + k;
      if (errors[i]) std::rethrow_exception(errors[i]);
      acc.add(metric(results[i]));
      const std::size_t n = i + 1;
      if (plan.target_rel_half_width > 0.0 && n >= plan.min_reps && n >= 2) {
        const double hw = half_width_95(acc);
        const double mean = acc.mean();
        const double scale = mean < 0.0 ? -mean : mean;
        if (hw <= plan.target_rel_half_width * scale) {
          accepted = n;
          out.target_met = true;
          out.mean = mean;
          out.half_width_95 = hw;
          out.speculative_discarded = batch - 1 - k;
          break;
        }
      }
    }
  }
  if (accepted == 0) {
    accepted = plan.max_reps;
    out.mean = acc.mean();
    out.half_width_95 = half_width_95(acc);
    out.target_met = plan.target_rel_half_width > 0.0 &&
                     out.half_width_95 <=
                         plan.target_rel_half_width *
                             (out.mean < 0.0 ? -out.mean : out.mean);
  }
  results.resize(accepted);
  rep_span.arg("accepted", static_cast<double>(accepted));
  rep_span.arg("discarded", static_cast<double>(out.speculative_discarded));
  out.runs = std::move(results);
  return out;
}

/// Replicate the MMS discrete-event simulation: replication i runs
/// `base.seed + i`. The CI metric is processor utilization (the paper's
/// headline measure).
[[nodiscard]] ReplicationRun<SimulationResult> replicate_mms(
    const SimulationConfig& base, const ReplicationPlan& plan);

/// Replicate the MMS STPN simulation. The net is built and compiled
/// once and shared read-only by all replications (the compiled net is
/// immutable; each replication owns its marking, clocks, and RNG). The
/// CI metric is processor utilization.
[[nodiscard]] ReplicationRun<PetriMmsResult> replicate_mms_petri(
    const core::MmsConfig& config, double sim_time, double warmup_fraction,
    std::uint64_t base_seed, const ReplicationPlan& plan,
    ServiceDistribution memory_dist = ServiceDistribution::kExponential);

/// Replicate the open-network simulation. The CI metric is the class-0
/// end-to-end response time.
[[nodiscard]] ReplicationRun<OpenSimulationResult> replicate_open(
    const qn::OpenNetwork& net, const OpenSimulationConfig& base,
    const ReplicationPlan& plan);

}  // namespace latol::sim
