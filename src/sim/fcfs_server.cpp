#include "sim/fcfs_server.hpp"

#include "util/error.hpp"

namespace latol::sim {

FcfsServer::FcfsServer(Simulator& sim, std::string name, int servers,
                       StatTracking track)
    : sim_(sim), name_(std::move(name)), servers_(servers), track_(track) {
  LATOL_REQUIRE(servers >= 1, "server count " << servers);
}

void FcfsServer::ring_push(const Job& job) {
  if (waiting_count_ == ring_.size()) {
    // Grow to the next power of two, linearizing head-first so FIFO order
    // survives the move.
    std::vector<Job> grown(ring_.empty() ? 8 : ring_.size() * 2);
    for (std::size_t i = 0; i < waiting_count_; ++i)
      grown[i] = ring_[(ring_head_ + i) & (ring_.size() - 1)];
    ring_ = std::move(grown);
    ring_head_ = 0;
  }
  ring_[(ring_head_ + waiting_count_) & (ring_.size() - 1)] = job;
  ++waiting_count_;
}

void FcfsServer::reset_stats() {
  completions_ = 0;
  busy_fraction_.reset(sim_.now());
  qlen_.reset(sim_.now());
  residence_.reset();
}

double FcfsServer::utilization() const {
  LATOL_REQUIRE(track(StatTracking::kBusy),
                "utilization tracking disabled on " << name_);
  return busy_fraction_.mean(sim_.now());
}

double FcfsServer::mean_queue_length() const {
  LATOL_REQUIRE(track(StatTracking::kQueueLength),
                "queue-length tracking disabled on " << name_);
  return qlen_.mean(sim_.now());
}

}  // namespace latol::sim
