#include "sim/fcfs_server.hpp"

#include "util/error.hpp"

namespace latol::sim {

FcfsServer::FcfsServer(Simulator& sim, std::string name, int servers)
    : sim_(sim), name_(std::move(name)), servers_(servers) {
  LATOL_REQUIRE(servers >= 1, "server count " << servers);
}

void FcfsServer::submit(double service_time, std::function<void()> on_done) {
  LATOL_REQUIRE(service_time >= 0.0, "service time " << service_time);
  waiting_.push_back(Job{service_time, sim_.now(), std::move(on_done)});
  qlen_.add(sim_.now(), +1.0);
  try_start();
}

void FcfsServer::update_busy() {
  busy_fraction_.set(sim_.now(), static_cast<double>(in_service_) /
                                     static_cast<double>(servers_));
}

void FcfsServer::try_start() {
  while (in_service_ < servers_ && !waiting_.empty()) {
    Job job = std::move(waiting_.front());
    waiting_.pop_front();
    ++in_service_;
    update_busy();
    const double service = job.service;
    sim_.schedule_after(service, [this, job = std::move(job)]() mutable {
      --in_service_;
      update_busy();
      ++completions_;
      qlen_.add(sim_.now(), -1.0);
      residence_.add(sim_.now() - job.arrival);
      try_start();
      if (job.on_done) job.on_done();
    });
  }
}

void FcfsServer::reset_stats() {
  completions_ = 0;
  busy_fraction_.reset(sim_.now());
  qlen_.reset(sim_.now());
  residence_.reset();
}

double FcfsServer::utilization() const {
  return busy_fraction_.mean(sim_.now());
}

double FcfsServer::mean_queue_length() const { return qlen_.mean(sim_.now()); }

}  // namespace latol::sim
