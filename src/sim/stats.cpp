#include "sim/stats.hpp"

#include <cmath>

#include "util/error.hpp"

namespace latol::sim {

void OnlineStats::reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

double OnlineStats::variance() const {
  return count_ >= 2 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void TimeAverage::reset(double now) {
  weighted_sum_ = 0.0;
  last_change_ = now;
  start_ = now;
}

double TimeAverage::mean(double now) const {
  const double span = now - start_;
  if (span <= 0.0) return value_;
  return (weighted_sum_ + value_ * (now - last_change_)) / span;
}

double t_critical_95(std::size_t df) {
  // Two-sided alpha = 0.05 quantiles, df = 1..30.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  LATOL_REQUIRE(df >= 1, "t critical value needs df >= 1");
  if (df <= 30) return kTable[df - 1];
  return 1.96;
}

double half_width_95(const OnlineStats& stats) {
  if (stats.count() < 2) return 0.0;
  return t_critical_95(stats.count() - 1) * stats.stddev() /
         std::sqrt(static_cast<double>(stats.count()));
}

BatchMeans::BatchMeans(std::size_t num_batches)
    : sums_(num_batches, 0.0), counts_(num_batches, 0) {
  LATOL_REQUIRE(num_batches >= 2, "need at least 2 batches");
}

void BatchMeans::add(double x) {
  // Round-robin assignment keeps batches equally sized without knowing the
  // stream length in advance; for a stationary stream this is equivalent
  // to contiguous batching up to autocorrelation, which we accept for the
  // coarse CI this is used for.
  sums_[count_ % sums_.size()] += x;
  counts_[count_ % sums_.size()] += 1;
  ++count_;
}

double BatchMeans::mean() const {
  double s = 0.0;
  for (const double b : sums_) s += b;
  return count_ > 0 ? s / static_cast<double>(count_) : 0.0;
}

double BatchMeans::half_width_95() const {
  std::size_t filled = 0;
  double mean_of_means = 0.0;
  std::vector<double> means;
  means.reserve(sums_.size());
  for (std::size_t b = 0; b < sums_.size(); ++b) {
    if (counts_[b] == 0) continue;
    means.push_back(sums_[b] / static_cast<double>(counts_[b]));
    mean_of_means += means.back();
    ++filled;
  }
  if (filled < 2) return 0.0;
  mean_of_means /= static_cast<double>(filled);
  double var = 0.0;
  for (const double m : means) var += (m - mean_of_means) * (m - mean_of_means);
  var /= static_cast<double>(filled - 1);
  // 1.96: normal approximation; fine for the >= 20 batches we use.
  return 1.96 * std::sqrt(var / static_cast<double>(filled));
}

}  // namespace latol::sim
