#include "sim/stats.hpp"

#include <cmath>

#include "util/error.hpp"

namespace latol::sim {

void OnlineStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

double OnlineStats::variance() const {
  return count_ >= 2 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void TimeAverage::set(double now, double v) {
  LATOL_REQUIRE(now + 1e-12 >= last_change_,
                "time went backwards: " << now << " < " << last_change_);
  weighted_sum_ += value_ * (now - last_change_);
  value_ = v;
  last_change_ = now;
}

void TimeAverage::add(double now, double delta) { set(now, value_ + delta); }

void TimeAverage::reset(double now) {
  weighted_sum_ = 0.0;
  last_change_ = now;
  start_ = now;
}

double TimeAverage::mean(double now) const {
  const double span = now - start_;
  if (span <= 0.0) return value_;
  return (weighted_sum_ + value_ * (now - last_change_)) / span;
}

BatchMeans::BatchMeans(std::size_t num_batches)
    : sums_(num_batches, 0.0), counts_(num_batches, 0) {
  LATOL_REQUIRE(num_batches >= 2, "need at least 2 batches");
}

void BatchMeans::add(double x) {
  // Round-robin assignment keeps batches equally sized without knowing the
  // stream length in advance; for a stationary stream this is equivalent
  // to contiguous batching up to autocorrelation, which we accept for the
  // coarse CI this is used for.
  sums_[count_ % sums_.size()] += x;
  counts_[count_ % sums_.size()] += 1;
  ++count_;
}

double BatchMeans::mean() const {
  double s = 0.0;
  for (const double b : sums_) s += b;
  return count_ > 0 ? s / static_cast<double>(count_) : 0.0;
}

double BatchMeans::half_width_95() const {
  std::size_t filled = 0;
  double mean_of_means = 0.0;
  std::vector<double> means;
  means.reserve(sums_.size());
  for (std::size_t b = 0; b < sums_.size(); ++b) {
    if (counts_[b] == 0) continue;
    means.push_back(sums_[b] / static_cast<double>(counts_[b]));
    mean_of_means += means.back();
    ++filled;
  }
  if (filled < 2) return 0.0;
  mean_of_means /= static_cast<double>(filled);
  double var = 0.0;
  for (const double m : means) var += (m - mean_of_means) * (m - mean_of_means);
  var /= static_cast<double>(filled - 1);
  // 1.96: normal approximation; fine for the >= 20 batches we use.
  return 1.96 * std::sqrt(var / static_cast<double>(filled));
}

}  // namespace latol::sim
