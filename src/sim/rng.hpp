// Random-number utilities for the simulators.
//
// All stochastic components draw from an explicitly seeded 64-bit Mersenne
// twister so every simulation is reproducible from (config, seed).
#pragma once

#include <cstdint>
#include <random>
#include <span>

#include "util/error.hpp"

namespace latol::sim {

/// Service-time distribution families used by the paper: exponential by
/// default; deterministic for the §8 sensitivity check ("we also studied a
/// change in the service time distribution for memory access time from
/// exponential to deterministic").
enum class ServiceDistribution {
  kExponential,
  kDeterministic,
};

/// Seeded random source with the draws the simulators need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    ++draws_;
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Exponential with the given mean (mean 0 returns 0).
  [[nodiscard]] double exponential(double mean) {
    LATOL_REQUIRE(mean >= 0.0, "exponential mean " << mean);
    if (mean == 0.0) return 0.0;
    ++draws_;
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// A service-time draw from `dist` with the given mean.
  [[nodiscard]] double service(ServiceDistribution dist, double mean) {
    return dist == ServiceDistribution::kExponential ? exponential(mean)
                                                     : mean;
  }

  /// Bernoulli with success probability p.
  [[nodiscard]] bool bernoulli(double p) {
    LATOL_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p " << p);
    return uniform01() < p;
  }

  /// Uniform integer in [0, n).
  [[nodiscard]] std::size_t uniform_index(std::size_t n) {
    LATOL_REQUIRE(n > 0, "uniform_index over empty range");
    ++draws_;
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Sample an index from an unnormalized discrete distribution.
  [[nodiscard]] std::size_t discrete(std::span<const double> weights);

  /// Derive an independent stream (for per-component generators). The
  /// seeding draw counts against this generator; the child starts at 0.
  [[nodiscard]] Rng split() {
    ++draws_;
    return Rng(engine_());
  }

  /// Variates drawn so far (deterministic draws such as service() with a
  /// deterministic distribution consume no randomness and are not
  /// counted). Feeds the sim.*.rng_draws metrics (DESIGN.md §9).
  [[nodiscard]] std::uint64_t draws() const { return draws_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t draws_ = 0;
};

inline std::size_t Rng::discrete(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    LATOL_REQUIRE(w >= 0.0, "negative weight " << w);
    total += w;
  }
  LATOL_REQUIRE(total > 0.0, "discrete distribution with zero mass");
  double u = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;  // numerical tail
}

}  // namespace latol::sim
