#include "sim/petri.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace latol::sim {

// --- StochasticPetriNet ------------------------------------------------------

PlaceId StochasticPetriNet::add_place(std::string name, long initial_tokens) {
  LATOL_REQUIRE(initial_tokens >= 0, "initial tokens " << initial_tokens);
  places_.push_back(Place{std::move(name), initial_tokens});
  return places_.size() - 1;
}

TransitionId StochasticPetriNet::add_transition(std::string name,
                                                TransitionTiming timing,
                                                double mean, double weight) {
  if (timing != TransitionTiming::kImmediate) {
    LATOL_REQUIRE(mean >= 0.0 && std::isfinite(mean),
                  "mean delay " << mean << " for transition " << name);
  }
  LATOL_REQUIRE(weight > 0.0, "weight " << weight);
  transitions_.push_back(
      Transition{std::move(name), timing, mean, weight, {}, {}});
  return transitions_.size() - 1;
}

void StochasticPetriNet::add_input(TransitionId t, PlaceId p, long weight) {
  LATOL_REQUIRE(t < transitions_.size() && p < places_.size(),
                "arc endpoints out of range");
  LATOL_REQUIRE(weight >= 1, "arc weight " << weight);
  transitions_[t].inputs.push_back(Arc{p, weight});
}

void StochasticPetriNet::add_output(TransitionId t, PlaceId p, long weight) {
  LATOL_REQUIRE(t < transitions_.size() && p < places_.size(),
                "arc endpoints out of range");
  LATOL_REQUIRE(weight >= 1, "arc weight " << weight);
  transitions_[t].outputs.push_back(Arc{p, weight});
}

const std::string& StochasticPetriNet::place_name(PlaceId p) const {
  LATOL_REQUIRE(p < places_.size(), "place " << p);
  return places_[p].name;
}

const std::string& StochasticPetriNet::transition_name(TransitionId t) const {
  LATOL_REQUIRE(t < transitions_.size(), "transition " << t);
  return transitions_[t].name;
}

long StochasticPetriNet::initial_tokens(PlaceId p) const {
  LATOL_REQUIRE(p < places_.size(), "place " << p);
  return places_[p].initial;
}

void StochasticPetriNet::validate() const {
  LATOL_REQUIRE(!places_.empty(), "net has no places");
  LATOL_REQUIRE(!transitions_.empty(), "net has no transitions");
  for (const Transition& t : transitions_) {
    LATOL_REQUIRE(!t.inputs.empty(),
                  "transition " << t.name
                                << " has no inputs (would fire forever)");
  }
}

// --- PetriSimulator ----------------------------------------------------------

PetriSimulator::PetriSimulator(const StochasticPetriNet& net,
                               std::uint64_t seed)
    : net_(net), rng_(seed) {
  net_.validate();
  const std::size_t P = net_.num_places();
  const std::size_t T = net_.num_transitions();
  marking_.resize(P);
  for (std::size_t p = 0; p < P; ++p) marking_[p] = net_.places_[p].initial;
  clock_.assign(T, std::numeric_limits<double>::infinity());
  epoch_.assign(T, 0);
  firings_.assign(T, 0);
  token_avg_.reserve(P);
  for (std::size_t p = 0; p < P; ++p)
    token_avg_.emplace_back(0.0, static_cast<double>(marking_[p]));
  affected_.resize(P);
  for (std::size_t t = 0; t < T; ++t)
    for (const auto& arc : net_.transitions_[t].inputs)
      affected_[arc.place].push_back(t);
  // Every immediate transition is a candidate at time zero.
  in_pool_.assign(T, 0);
  for (std::size_t t = 0; t < T; ++t) {
    if (net_.transitions_[t].timing == TransitionTiming::kImmediate) {
      immediate_pool_.push_back(t);
      in_pool_[t] = 1;
    }
  }
}

bool PetriSimulator::enabled(TransitionId t) const {
  for (const auto& arc : net_.transitions_[t].inputs)
    if (marking_[arc.place] < arc.weight) return false;
  return true;
}

void PetriSimulator::heap_push(HeapEntry e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) {
                   return a.time > b.time;
                 });
}

bool PetriSimulator::heap_pop(HeapEntry& out) {
  const auto later = [](const HeapEntry& a, const HeapEntry& b) {
    return a.time > b.time;
  };
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    const HeapEntry e = heap_.back();
    heap_.pop_back();
    if (e.epoch == epoch_[e.t] && std::isfinite(clock_[e.t]) &&
        clock_[e.t] == e.time) {
      out = e;
      return true;
    }
  }
  return false;
}

void PetriSimulator::refresh_clock(TransitionId t, double now) {
  const auto& tr = net_.transitions_[t];
  if (tr.timing == TransitionTiming::kImmediate) return;
  const bool en = enabled(t);
  const bool armed = std::isfinite(clock_[t]);
  if (en && !armed) {
    const double delay = tr.timing == TransitionTiming::kExponential
                             ? rng_.exponential(tr.mean)
                             : tr.mean;
    clock_[t] = now + delay;
    ++epoch_[t];
    heap_push(HeapEntry{clock_[t], t, epoch_[t]});
  } else if (!en && armed) {
    clock_[t] = std::numeric_limits<double>::infinity();
    ++epoch_[t];
  }
}

void PetriSimulator::fire(TransitionId t, double now) {
  const auto& tr = net_.transitions_[t];
  ++firings_[t];
  ++total_firings_;
  // Consume, produce, and re-check every transition fed by a changed place.
  for (const auto& arc : tr.inputs) {
    marking_[arc.place] -= arc.weight;
    LATOL_REQUIRE(marking_[arc.place] >= 0,
                  "negative marking at " << net_.place_name(arc.place));
    token_avg_[arc.place].set(now, static_cast<double>(marking_[arc.place]));
    tokens_moved_ += static_cast<std::uint64_t>(arc.weight);
  }
  for (const auto& arc : tr.outputs) {
    marking_[arc.place] += arc.weight;
    token_avg_[arc.place].set(now, static_cast<double>(marking_[arc.place]));
    tokens_moved_ += static_cast<std::uint64_t>(arc.weight);
  }
  // The fired transition's clock is spent.
  clock_[t] = std::numeric_limits<double>::infinity();
  ++epoch_[t];
  auto touch = [&](TransitionId u) {
    if (net_.transitions_[u].timing == TransitionTiming::kImmediate) {
      if (!in_pool_[u]) {
        immediate_pool_.push_back(u);
        in_pool_[u] = 1;
      }
    } else {
      refresh_clock(u, now);
    }
  };
  for (const auto& arc : tr.inputs)
    for (const TransitionId u : affected_[arc.place]) touch(u);
  for (const auto& arc : tr.outputs)
    for (const TransitionId u : affected_[arc.place]) touch(u);
  touch(t);
}

void PetriSimulator::drain_immediates(double now) {
  // Fire enabled immediates (weighted random among the enabled frontier)
  // until none remain. Disabled candidates drop out of the pool — a later
  // marking change re-adds them via fire()'s touch().
  for (std::uint64_t guard = 0;; ++guard) {
    LATOL_REQUIRE(guard < 10000000,
                  "immediate-transition livelock: check net structure");
    std::vector<TransitionId> ready;
    std::vector<double> weights;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < immediate_pool_.size(); ++i) {
      const TransitionId t = immediate_pool_[i];
      if (enabled(t)) {
        immediate_pool_[keep++] = t;
        ready.push_back(t);
        weights.push_back(net_.transitions_[t].weight);
      } else {
        in_pool_[t] = 0;
      }
    }
    immediate_pool_.resize(keep);
    if (ready.empty()) return;
    fire(ready[rng_.discrete(weights)], now);
  }
}

PetriStats PetriSimulator::run(double horizon, double warmup) {
  LATOL_REQUIRE(horizon > 0.0 && warmup >= 0.0 && warmup < horizon,
                "bad horizon/warmup: " << horizon << '/' << warmup);
  double now = 0.0;
  // Arm all timed transitions and settle initial immediates.
  drain_immediates(now);
  for (std::size_t t = 0; t < net_.num_transitions(); ++t)
    refresh_clock(t, now);

  bool stats_reset = false;
  auto maybe_reset = [&](double time) {
    if (!stats_reset && time >= warmup) {
      for (std::size_t p = 0; p < net_.num_places(); ++p)
        token_avg_[p].reset(warmup);
      std::fill(firings_.begin(), firings_.end(), 0);
      stats_reset = true;
    }
  };
  if (warmup == 0.0) maybe_reset(0.0);

  HeapEntry next{};
  while (heap_pop(next)) {
    if (next.time > horizon) {
      // Not fired: restore the entry's validity for a hypothetical
      // continuation, then stop (we only report up to the horizon anyway).
      heap_push(next);
      break;
    }
    now = next.time;
    maybe_reset(now);
    fire(next.t, now);
    drain_immediates(now);
  }
  now = horizon;
  maybe_reset(now);

  PetriStats stats;
  stats.firings = firings_;
  stats.total_firings = total_firings_;
  stats.tokens_moved = tokens_moved_;
  stats.rng_draws = rng_.draws();
  stats.observed_time = horizon - warmup;
  stats.firing_rate.resize(net_.num_transitions());
  for (std::size_t t = 0; t < net_.num_transitions(); ++t)
    stats.firing_rate[t] =
        static_cast<double>(firings_[t]) / stats.observed_time;
  stats.mean_tokens.resize(net_.num_places());
  for (std::size_t p = 0; p < net_.num_places(); ++p)
    stats.mean_tokens[p] = token_avg_[p].mean(horizon);
  return stats;
}

}  // namespace latol::sim
