#include "sim/petri.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace latol::sim {

// --- StochasticPetriNet ------------------------------------------------------

PlaceId StochasticPetriNet::add_place(std::string name, long initial_tokens) {
  LATOL_REQUIRE(initial_tokens >= 0, "initial tokens " << initial_tokens);
  places_.push_back(Place{std::move(name), initial_tokens});
  return places_.size() - 1;
}

TransitionId StochasticPetriNet::add_transition(std::string name,
                                                TransitionTiming timing,
                                                double mean, double weight) {
  if (timing != TransitionTiming::kImmediate) {
    LATOL_REQUIRE(mean >= 0.0 && std::isfinite(mean),
                  "mean delay " << mean << " for transition " << name);
  }
  LATOL_REQUIRE(weight > 0.0, "weight " << weight);
  transitions_.push_back(
      Transition{std::move(name), timing, mean, weight, {}, {}});
  return transitions_.size() - 1;
}

void StochasticPetriNet::add_input(TransitionId t, PlaceId p, long weight) {
  LATOL_REQUIRE(t < transitions_.size() && p < places_.size(),
                "arc endpoints out of range");
  LATOL_REQUIRE(weight >= 1, "arc weight " << weight);
  transitions_[t].inputs.push_back(Arc{p, weight});
}

void StochasticPetriNet::add_output(TransitionId t, PlaceId p, long weight) {
  LATOL_REQUIRE(t < transitions_.size() && p < places_.size(),
                "arc endpoints out of range");
  LATOL_REQUIRE(weight >= 1, "arc weight " << weight);
  transitions_[t].outputs.push_back(Arc{p, weight});
}

const std::string& StochasticPetriNet::place_name(PlaceId p) const {
  LATOL_REQUIRE(p < places_.size(), "place " << p);
  return places_[p].name;
}

const std::string& StochasticPetriNet::transition_name(TransitionId t) const {
  LATOL_REQUIRE(t < transitions_.size(), "transition " << t);
  return transitions_[t].name;
}

long StochasticPetriNet::initial_tokens(PlaceId p) const {
  LATOL_REQUIRE(p < places_.size(), "place " << p);
  return places_[p].initial;
}

void StochasticPetriNet::validate() const {
  LATOL_REQUIRE(!places_.empty(), "net has no places");
  LATOL_REQUIRE(!transitions_.empty(), "net has no transitions");
  for (const Transition& t : transitions_) {
    LATOL_REQUIRE(!t.inputs.empty(),
                  "transition " << t.name
                                << " has no inputs (would fire forever)");
  }
}

// --- CompiledPetriNet --------------------------------------------------------

CompiledPetriNet::CompiledPetriNet(const StochasticPetriNet& net) {
  net.validate();
  const std::size_t P = net.num_places();
  const std::size_t T = net.num_transitions();

  place_names_.reserve(P);
  initial_.reserve(P);
  for (const auto& place : net.places_) {
    place_names_.push_back(place.name);
    initial_.push_back(place.initial);
  }

  timing_.reserve(T);
  mean_.reserve(T);
  weight_.reserve(T);
  in_first_.assign(T + 1, 0);
  out_first_.assign(T + 1, 0);
  aff_first_.assign(P + 1, 0);
  for (std::size_t t = 0; t < T; ++t) {
    const auto& tr = net.transitions_[t];
    timing_.push_back(tr.timing);
    mean_.push_back(tr.mean);
    weight_.push_back(tr.weight);
    in_first_[t + 1] =
        in_first_[t] + static_cast<std::uint32_t>(tr.inputs.size());
    out_first_[t + 1] =
        out_first_[t] + static_cast<std::uint32_t>(tr.outputs.size());
    for (const auto& arc : tr.inputs) ++aff_first_[arc.place + 1];
  }
  for (std::size_t p = 0; p < P; ++p) aff_first_[p + 1] += aff_first_[p];

  in_place_.resize(in_first_[T]);
  in_weight_.resize(in_first_[T]);
  out_place_.resize(out_first_[T]);
  out_weight_.resize(out_first_[T]);
  aff_tid_.resize(aff_first_[P]);
  aff_weight_.resize(aff_first_[P]);
  max_in_weight_.assign(P, 0);
  std::vector<std::uint32_t> aff_cursor(aff_first_.begin(),
                                        aff_first_.end() - 1);
  for (std::size_t t = 0; t < T; ++t) {
    const auto& tr = net.transitions_[t];
    std::uint32_t i = in_first_[t];
    for (const auto& arc : tr.inputs) {
      in_place_[i] = static_cast<std::uint32_t>(arc.place);
      in_weight_[i] = arc.weight;
      ++i;
      // Ascending-t construction keeps each consumer list in transition
      // order, matching the touch order of the pre-CSR engine.
      aff_weight_[aff_cursor[arc.place]] = arc.weight;
      aff_tid_[aff_cursor[arc.place]++] = static_cast<std::uint32_t>(t);
      max_in_weight_[arc.place] =
          std::max(max_in_weight_[arc.place], arc.weight);
    }
    std::uint32_t o = out_first_[t];
    for (const auto& arc : tr.outputs) {
      out_place_[o] = static_cast<std::uint32_t>(arc.place);
      out_weight_[o] = arc.weight;
      ++o;
    }
  }

  // Split each consumer list by timing class, preserving the per-place
  // ascending-transition order within each class.
  afft_first_.assign(P + 1, 0);
  affi_first_.assign(P + 1, 0);
  for (std::size_t p = 0; p < P; ++p) {
    afft_first_[p + 1] = afft_first_[p];
    affi_first_[p + 1] = affi_first_[p];
    for (std::uint32_t c = aff_first_[p]; c < aff_first_[p + 1]; ++c) {
      if (timing_[aff_tid_[c]] == TransitionTiming::kImmediate)
        ++affi_first_[p + 1];
      else
        ++afft_first_[p + 1];
    }
  }
  afft_tid_.resize(afft_first_[P]);
  affi_tid_.resize(affi_first_[P]);
  {
    std::vector<std::uint32_t> tc(afft_first_.begin(), afft_first_.end() - 1);
    std::vector<std::uint32_t> ic(affi_first_.begin(), affi_first_.end() - 1);
    for (std::size_t p = 0; p < P; ++p) {
      for (std::uint32_t c = aff_first_[p]; c < aff_first_[p + 1]; ++c) {
        const std::uint32_t t = aff_tid_[c];
        if (timing_[t] == TransitionTiming::kImmediate)
          affi_tid_[ic[p]++] = t;
        else
          afft_tid_[tc[p]++] = t;
      }
    }
  }
}

// --- PetriSimulator ----------------------------------------------------------

PetriSimulator::PetriSimulator(const StochasticPetriNet& net,
                               std::uint64_t seed)
    : owned_(std::make_unique<const CompiledPetriNet>(net)),
      net_(*owned_),
      rng_(seed) {
  init();
}

PetriSimulator::PetriSimulator(const CompiledPetriNet& net, std::uint64_t seed)
    : net_(net), rng_(seed) {
  init();
}

void PetriSimulator::init() {
  const std::size_t P = net_.num_places();
  const std::size_t T = net_.num_transitions();
  marking_ = net_.initial_;
  tstate_.assign(
      T, TransState{std::numeric_limits<double>::infinity(), 0, 0});
  firings_.assign(T, 0);
  tok_weighted_.assign(P, 0.0);
  tok_last_.assign(P, 0.0);
  tok_start_ = 0.0;
  std::size_t max_arcs = 0;
  for (std::size_t t = 0; t < T; ++t) {
    for (std::uint32_t a = net_.in_first_[t]; a < net_.in_first_[t + 1]; ++a)
      if (marking_[net_.in_place_[a]] < net_.in_weight_[a])
        ++tstate_[t].deficit;
    const std::size_t arcs =
        (net_.in_first_[t + 1] - net_.in_first_[t]) +
        (net_.out_first_[t + 1] - net_.out_first_[t]);
    max_arcs = std::max(max_arcs, arcs);
  }
  touch_scratch_.assign(max_arcs, 0);
  // Every immediate transition is a candidate at time zero.
  for (std::size_t t = 0; t < T; ++t) {
    if (net_.timing_[t] == TransitionTiming::kImmediate) {
      immediate_pool_.push_back(static_cast<std::uint32_t>(t));
      tstate_[t].in_pool = 1;
    }
  }
}

void PetriSimulator::refresh_clock(std::uint32_t t, double now) {
  if (net_.timing_[t] == TransitionTiming::kImmediate) return;
  const bool en = enabled(t);
  const bool armed = std::isfinite(tstate_[t].clock);
  if (en && !armed) {
    const double delay = net_.timing_[t] == TransitionTiming::kExponential
                             ? rng_.exponential(net_.mean_[t])
                             : net_.mean_[t];
    tstate_[t].clock = now + delay;
    queue_.push(tstate_[t].clock, t);
  } else if (!en && armed) {
    // Disarm by exact erase — the calendar replaces the old heap's
    // stale-entry epoch bookkeeping.
    const bool erased = queue_.erase(tstate_[t].clock, t);
    LATOL_REQUIRE(erased, "armed transition missing from calendar");
    tstate_[t].clock = std::numeric_limits<double>::infinity();
  }
}

void PetriSimulator::fire(std::uint32_t t, double now) {
  ++firings_[t];
  ++total_firings_;
  const std::uint32_t* const in_place = net_.in_place_.data();
  const long* const in_weight = net_.in_weight_.data();
  const std::uint32_t* const out_place = net_.out_place_.data();
  const long* const out_weight = net_.out_weight_.data();
  const std::uint32_t in_lo = net_.in_first_[t];
  const std::uint32_t in_hi = net_.in_first_[t + 1];
  const std::uint32_t out_lo = net_.out_first_[t];
  const std::uint32_t out_hi = net_.out_first_[t + 1];
  // Consume and produce, maintaining deficits and noting which places saw
  // an enabledness flip; only those need their consumers re-examined.
  // (touch_scratch_ holds the flags: in arcs first, then out arcs.)
  char* const flips = touch_scratch_.data();
  std::uint32_t f = 0;
  for (std::uint32_t a = in_lo; a < in_hi; ++a) {
    const std::uint32_t p = in_place[a];
    flips[f++] = change_marking(p, -in_weight[a], now) ? 1 : 0;
    tokens_moved_ += static_cast<std::uint64_t>(in_weight[a]);
  }
  for (std::uint32_t a = out_lo; a < out_hi; ++a) {
    const std::uint32_t p = out_place[a];
    flips[f++] = change_marking(p, out_weight[a], now) ? 1 : 0;
    tokens_moved_ += static_cast<std::uint64_t>(out_weight[a]);
  }
  // The fired transition's clock is spent (its calendar entry was popped).
  tstate_[t].clock = std::numeric_limits<double>::infinity();
  // Touch the consumers of every flipped place, timed then immediate per
  // place: timed ones refresh their clocks when armed-ness disagrees with
  // enabledness, immediates enter the candidate pool when enabled. The
  // two streams are independent (only timed touches draw, only immediate
  // touches push), so per-class ascending order reproduces the combined
  // walk's sequences.
  auto touch_place = [&](std::uint32_t p) {
    const std::uint32_t* const afft_first = net_.afft_first_.data();
    const std::uint32_t* const afft_tid = net_.afft_tid_.data();
    for (std::uint32_t c = afft_first[p]; c < afft_first[p + 1]; ++c) {
      const std::uint32_t u = afft_tid[c];
      if ((tstate_[u].deficit == 0) != std::isfinite(tstate_[u].clock))
        refresh_clock(u, now);
    }
    const std::uint32_t* const affi_first = net_.affi_first_.data();
    const std::uint32_t* const affi_tid = net_.affi_tid_.data();
    for (std::uint32_t c = affi_first[p]; c < affi_first[p + 1]; ++c) {
      const std::uint32_t u = affi_tid[c];
      if (!tstate_[u].in_pool && tstate_[u].deficit == 0) {
        immediate_pool_.push_back(u);
        tstate_[u].in_pool = 1;
      }
    }
  };
  f = 0;
  for (std::uint32_t a = in_lo; a < in_hi; ++a, ++f)
    if (flips[f]) touch_place(in_place[a]);
  for (std::uint32_t a = out_lo; a < out_hi; ++a, ++f)
    if (flips[f]) touch_place(out_place[a]);
  // The fired transition itself: rearm (timed, clock spent above) or
  // repool (immediate) when still enabled.
  if (net_.timing_[t] == TransitionTiming::kImmediate) {
    if (!tstate_[t].in_pool && tstate_[t].deficit == 0) {
      immediate_pool_.push_back(t);
      tstate_[t].in_pool = 1;
    }
  } else if (tstate_[t].deficit == 0) {
    refresh_clock(t, now);
  }
}

void PetriSimulator::fail_negative_marking(std::uint32_t p) const {
  LATOL_REQUIRE(false, "negative marking at " << net_.place_name(p));
}

void PetriSimulator::drain_immediates(double now) {
  // Fire enabled immediates (weighted random among the enabled frontier)
  // until none remain. Disabled candidates drop out of the pool — a later
  // marking change re-adds them via fire()'s touch().
  for (std::uint64_t guard = 0;; ++guard) {
    LATOL_REQUIRE(guard < 10000000,
                  "immediate-transition livelock: check net structure");
    ready_.clear();
    ready_weights_.clear();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < immediate_pool_.size(); ++i) {
      const std::uint32_t t = immediate_pool_[i];
      if (enabled(t)) {
        immediate_pool_[keep++] = t;
        ready_.push_back(t);
        ready_weights_.push_back(net_.weight_[t]);
      } else {
        tstate_[t].in_pool = 0;
      }
    }
    immediate_pool_.resize(keep);
    if (ready_.empty()) return;
    fire(ready_[rng_.discrete(ready_weights_)], now);
  }
}

PetriStats PetriSimulator::run(double horizon, double warmup) {
  LATOL_REQUIRE(horizon > 0.0 && warmup >= 0.0 && warmup < horizon,
                "bad horizon/warmup: " << horizon << '/' << warmup);
  double now = 0.0;
  // Arm all timed transitions and settle initial immediates.
  drain_immediates(now);
  for (std::size_t t = 0; t < net_.num_transitions(); ++t)
    refresh_clock(static_cast<std::uint32_t>(t), now);

  bool stats_reset = false;
  auto maybe_reset = [&](double time) {
    if (!stats_reset && time >= warmup) {
      std::fill(tok_weighted_.begin(), tok_weighted_.end(), 0.0);
      std::fill(tok_last_.begin(), tok_last_.end(), warmup);
      tok_start_ = warmup;
      std::fill(firings_.begin(), firings_.end(), 0);
      stats_reset = true;
    }
  };
  if (warmup == 0.0) maybe_reset(0.0);

  CalendarEntry next{};
  while (queue_.pop_until(horizon, next)) {
    now = next.time;
    maybe_reset(now);
    fire(next.payload, now);
    drain_immediates(now);
  }
  now = horizon;
  maybe_reset(now);

  PetriStats stats;
  stats.firings = firings_;
  stats.total_firings = total_firings_;
  stats.tokens_moved = tokens_moved_;
  stats.queue_ops = queue_.ops();
  stats.rng_draws = rng_.draws();
  stats.observed_time = horizon - warmup;
  stats.firing_rate.resize(net_.num_transitions());
  for (std::size_t t = 0; t < net_.num_transitions(); ++t)
    stats.firing_rate[t] =
        static_cast<double>(firings_[t]) / stats.observed_time;
  stats.mean_tokens.resize(net_.num_places());
  for (std::size_t p = 0; p < net_.num_places(); ++p) {
    // Same arithmetic as TimeAverage::mean: close the open interval at
    // the horizon, divide by the observation span.
    const double span = horizon - tok_start_;
    const double value = static_cast<double>(marking_[p]);
    stats.mean_tokens[p] =
        span <= 0.0 ? value
                    : (tok_weighted_[p] + value * (horizon - tok_last_[p])) /
                          span;
  }
  return stats;
}

}  // namespace latol::sim
