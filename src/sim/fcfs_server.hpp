// FCFS multi-server queue on top of the DES kernel.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/des.hpp"
#include "sim/stats.hpp"

namespace latol::sim {

/// An exponential/deterministic service center with a FIFO queue and
/// `servers` parallel servers (1 = the paper's stations; >1 models e.g. a
/// multiported memory). Jobs are (service time, completion callback)
/// pairs; the server tracks utilization (mean fraction of busy servers),
/// completions, per-job residence time, and time-averaged queue length,
/// and supports resetting statistics at the end of a warmup period.
class FcfsServer {
 public:
  FcfsServer(Simulator& sim, std::string name, int servers = 1);

  /// Enqueue a job with the given (already sampled) service time; invokes
  /// `on_done` when service completes.
  void submit(double service_time, std::function<void()> on_done);

  /// Forget accumulated statistics (for warmup); in-flight jobs keep
  /// their residence measured from their original arrival.
  void reset_stats();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int servers() const { return servers_; }
  [[nodiscard]] std::uint64_t completions() const { return completions_; }
  /// Mean fraction of servers busy (busy-time fraction when servers == 1).
  [[nodiscard]] double utilization() const;
  [[nodiscard]] double mean_queue_length() const;
  /// Mean residence (wait + service) per completed job.
  [[nodiscard]] double mean_residence() const { return residence_.mean(); }
  /// Jobs present (waiting + in service).
  [[nodiscard]] std::size_t queue_length() const {
    return waiting_.size() + static_cast<std::size_t>(in_service_);
  }

 private:
  struct Job {
    double service;
    double arrival;
    std::function<void()> on_done;
  };

  void try_start();
  void update_busy();

  Simulator& sim_;
  std::string name_;
  int servers_;
  std::deque<Job> waiting_;
  int in_service_ = 0;
  std::uint64_t completions_ = 0;
  TimeAverage busy_fraction_;
  TimeAverage qlen_;
  OnlineStats residence_;
};

}  // namespace latol::sim
