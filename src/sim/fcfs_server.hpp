// FCFS multi-server queue on top of the DES kernel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/des.hpp"
#include "sim/stats.hpp"

namespace latol::sim {

/// Which FcfsServer statistics to accumulate; a station's model can turn
/// off what it never reads, removing those updates from the event hot
/// path entirely. Counters (completions, instantaneous queue length) are
/// always maintained.
enum class StatTracking : unsigned {
  kNone = 0,
  kBusy = 1,         ///< utilization()
  kQueueLength = 2,  ///< mean_queue_length()
  kResidence = 4,    ///< mean_residence()
  kAll = 7,
};

/// Combine tracking masks: `kBusy | kResidence`.
[[nodiscard]] constexpr StatTracking operator|(StatTracking a,
                                               StatTracking b) {
  return static_cast<StatTracking>(static_cast<unsigned>(a) |
                                   static_cast<unsigned>(b));
}

/// An exponential/deterministic service center with a FIFO queue and
/// `servers` parallel servers (1 = the paper's stations; >1 models e.g. a
/// multiported memory). Jobs are (service time, completion callback)
/// pairs; the server tracks utilization (mean fraction of busy servers),
/// completions, per-job residence time, and time-averaged queue length,
/// and supports resetting statistics at the end of a warmup period.
/// Waiting jobs sit in a flat ring buffer and callbacks are InlineFn, so
/// steady-state operation performs no heap allocation.
class FcfsServer {
 public:
  FcfsServer(Simulator& sim, std::string name, int servers = 1,
             StatTracking track = StatTracking::kAll);

  /// Enqueue a job with the given (already sampled) service time; invokes
  /// `on_done` when service completes (pass {} for none). Hot path — in
  /// the header so station call sites inline the idle-server case, which
  /// bypasses the ring entirely.
  void submit(double service_time, InlineFn on_done) {
    LATOL_REQUIRE(service_time >= 0.0, "service time " << service_time);
    const double now = sim_.now();
    if (track(StatTracking::kQueueLength)) qlen_.add(now, +1.0);
    if (in_service_ < servers_ && waiting_count_ == 0) {
      start_job(service_time, now, on_done);
      return;
    }
    ring_push(Job{service_time, now, on_done});
    try_start();
  }

  /// Forget accumulated statistics (for warmup); in-flight jobs keep
  /// their residence measured from their original arrival.
  void reset_stats();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int servers() const { return servers_; }
  [[nodiscard]] std::uint64_t completions() const { return completions_; }
  /// Mean fraction of servers busy (busy-time fraction when servers == 1).
  [[nodiscard]] double utilization() const;
  [[nodiscard]] double mean_queue_length() const;
  /// Mean residence (wait + service) per completed job.
  [[nodiscard]] double mean_residence() const {
    LATOL_REQUIRE(track(StatTracking::kResidence),
                  "residence tracking disabled on " << name_);
    return residence_.mean();
  }
  /// Jobs present (waiting + in service).
  [[nodiscard]] std::size_t queue_length() const {
    return waiting_count_ + static_cast<std::size_t>(in_service_);
  }

 private:
  /// A waiting job; trivially copyable so the ring can relocate freely.
  struct Job {
    double service;
    double arrival;
    InlineFn on_done;
  };

  /// Begin service on one job: occupy a server and schedule completion.
  /// The completion event restarts the queue before running `on_done`, so
  /// a chained submit from the callback sees the freed server.
  void start_job(double service, double arrival, InlineFn on_done) {
    ++in_service_;
    update_busy();
    sim_.schedule_after(service, [this, arrival, on_done]() mutable {
      --in_service_;
      update_busy();
      ++completions_;
      if (track(StatTracking::kQueueLength)) qlen_.add(sim_.now(), -1.0);
      if (track(StatTracking::kResidence))
        residence_.add(sim_.now() - arrival);
      try_start();
      if (on_done) on_done();
    });
  }

  void try_start() {
    while (in_service_ < servers_ && waiting_count_ > 0) {
      const Job job = ring_pop();
      start_job(job.service, job.arrival, job.on_done);
    }
  }

  void update_busy() {
    if (track(StatTracking::kBusy))
      busy_fraction_.set(sim_.now(), static_cast<double>(in_service_) /
                                         static_cast<double>(servers_));
  }

  [[nodiscard]] bool track(StatTracking what) const {
    return (static_cast<unsigned>(track_) & static_cast<unsigned>(what)) !=
           0;
  }

  void ring_push(const Job& job);

  Job ring_pop() {
    const Job job = ring_[ring_head_];
    ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
    --waiting_count_;
    return job;
  }

  Simulator& sim_;
  std::string name_;
  int servers_;
  StatTracking track_;
  std::vector<Job> ring_;       // power-of-two capacity FIFO of waiting jobs
  std::size_t ring_head_ = 0;   // index of the oldest waiting job
  std::size_t waiting_count_ = 0;
  int in_service_ = 0;
  std::uint64_t completions_ = 0;
  TimeAverage busy_fraction_;
  TimeAverage qlen_;
  OnlineStats residence_;
};

}  // namespace latol::sim
