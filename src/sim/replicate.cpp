#include "sim/replicate.hpp"

#include "obs/registry.hpp"

namespace latol::sim {

ReplicationRun<SimulationResult> replicate_mms(const SimulationConfig& base,
                                               const ReplicationPlan& plan) {
  auto run = run_replications<SimulationResult>(
      plan,
      [&](std::size_t i) {
        obs::ScopedTimer timer("sim.rep.seconds");
        SimulationConfig cfg = base;
        cfg.seed = base.seed + i;
        return simulate_mms(cfg);
      },
      [](const SimulationResult& r) { return r.processor_utilization; });
  obs::count("sim.rep.runs", run.runs.size());
  obs::count("sim.rep.discarded", run.speculative_discarded);
  return run;
}

ReplicationRun<PetriMmsResult> replicate_mms_petri(
    const core::MmsConfig& config, double sim_time, double warmup_fraction,
    std::uint64_t base_seed, const ReplicationPlan& plan,
    ServiceDistribution memory_dist) {
  // One build + compile, shared by every replication (and by the
  // speculative ones — the compiled net is read-only).
  const MmsPetriModel model = build_mms_petri(config, memory_dist);
  const CompiledPetriNet compiled(model.net);
  auto run = run_replications<PetriMmsResult>(
      plan,
      [&](std::size_t i) {
        obs::ScopedTimer timer("sim.rep.seconds");
        return simulate_mms_petri_compiled(model, compiled, config, sim_time,
                                           warmup_fraction, base_seed + i);
      },
      [](const PetriMmsResult& r) { return r.processor_utilization; });
  obs::count("sim.rep.runs", run.runs.size());
  obs::count("sim.rep.discarded", run.speculative_discarded);
  return run;
}

ReplicationRun<OpenSimulationResult> replicate_open(
    const qn::OpenNetwork& net, const OpenSimulationConfig& base,
    const ReplicationPlan& plan) {
  LATOL_REQUIRE(net.num_classes() >= 1, "open network has no classes");
  auto run = run_replications<OpenSimulationResult>(
      plan,
      [&](std::size_t i) {
        obs::ScopedTimer timer("sim.rep.seconds");
        OpenSimulationConfig cfg = base;
        cfg.seed = base.seed + i;
        return simulate_open(net, cfg);
      },
      [](const OpenSimulationResult& r) { return r.response_time[0]; });
  obs::count("sim.rep.runs", run.runs.size());
  obs::count("sim.rep.discarded", run.speculative_discarded);
  return run;
}

}  // namespace latol::sim
