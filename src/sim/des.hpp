// Discrete-event simulation kernel (DESIGN.md §13).
//
// Events live in an arena of fixed-size slots recycled through a freelist:
// scheduling an event writes its trivially-copyable closure into a slot
// payload in place — no per-event heap allocation, no std::function — and
// pending events are ordered by a calendar queue keyed on simulated time.
// Ties fire in scheduling order (the calendar keeps the old kernel's
// stable (time, sequence) tie-break), which makes whole simulations
// reproducible from their seed.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "util/error.hpp"

namespace latol::sim {

/// Simulation clock type (model time units, as in the paper).
using SimTime = double;

/// Handle to a scheduled event: arena slot plus a generation stamp so a
/// handle left over from a recycled slot can never cancel the wrong event.
struct EventId {
  std::uint32_t slot = 0;
  std::uint32_t generation = 0;
};

/// Small trivially-copyable type-erased callable (up to kCapacity bytes of
/// captures). The arena kernel's analog of std::function<void()>: storing
/// or copying one never allocates, so completion callbacks can ride inside
/// event payloads and queue entries by value.
class InlineFn {
 public:
  /// Capture buffer size; closures larger than this don't fit.
  static constexpr std::size_t kCapacity = 32;

  InlineFn() = default;

  /// Unbound, same as default construction (mirrors std::function's
  /// nullptr idiom so `submit(t, nullptr)` reads naturally).
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Wrap `fn`; it must be trivially copyable, at most kCapacity bytes,
  /// and at most pointer-aligned.
  template <class F,
            class = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineFn>>>
  InlineFn(F fn) {  // NOLINT(google-explicit-constructor)
    static_assert(std::is_trivially_copyable_v<F>,
                  "InlineFn requires a trivially copyable callable");
    static_assert(sizeof(F) <= kCapacity, "InlineFn capture too large");
    static_assert(alignof(F) <= alignof(double),
                  "InlineFn capture over-aligned");
    invoke_ = [](void* p) { (*static_cast<F*>(p))(); };
    std::memcpy(buf_, &fn, sizeof(F));
  }

  /// True when a callable is bound.
  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  /// Invoke the bound callable; pre: bound.
  void operator()() { invoke_(buf_); }

 private:
  using Invoke = void (*)(void*);

  Invoke invoke_ = nullptr;
  alignas(double) unsigned char buf_[kCapacity] = {};
};

/// Event arena + calendar + clock.
class Simulator {
 public:
  /// Maximum event closure size; one cache line of inline captures.
  static constexpr std::size_t kMaxPayload = 64;

  /// Schedule `action` at absolute time `t` (>= now). `action` must be
  /// trivially copyable and at most kMaxPayload bytes; it is copied into
  /// an arena slot and destroyed by forgetting. Returns a handle usable
  /// with cancel() until the event fires.
  template <class F>
  EventId schedule(SimTime t, F action) {
    static_assert(std::is_trivially_copyable_v<F>,
                  "event actions must be trivially copyable");
    static_assert(sizeof(F) <= kMaxPayload, "event action too large");
    static_assert(alignof(F) <= alignof(std::max_align_t),
                  "event action over-aligned");
    LATOL_REQUIRE(t + 1e-12 >= now_,
                  "cannot schedule in the past: " << t << " < " << now_);
    const std::uint32_t idx = acquire_slot();
    Slot& s = slots_[idx];
    s.invoke = [](void* p) { (*static_cast<F*>(p))(); };
    s.time = t;
    std::memcpy(s.payload, &action, sizeof(F));
    queue_.push(t, idx);
    return EventId{idx, s.generation};
  }

  /// Schedule `action` after `delay` model time units.
  template <class F>
  EventId schedule_after(SimTime delay, F action) {
    LATOL_REQUIRE(delay >= 0.0, "negative delay " << delay);
    return schedule(now_ + delay, std::move(action));
  }

  /// Remove a pending event. Returns true if it was still pending; false
  /// if it already fired or was cancelled (the slot's generation moved on).
  bool cancel(EventId id);

  /// Execute events in time order until the calendar is empty or the next
  /// event is later than `horizon`. The clock ends at min(horizon, last
  /// event time); events beyond the horizon stay scheduled.
  void run_until(SimTime horizon);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  /// Calendar-queue operations so far (pushes + pops + erases).
  [[nodiscard]] std::uint64_t queue_ops() const { return queue_.ops(); }
  /// Events currently scheduled.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  using Invoke = void (*)(void*);

  /// One arena slot: thunk + fire time + recycling bookkeeping + the
  /// closure bytes. invoke == nullptr marks a free slot.
  struct Slot {
    Invoke invoke = nullptr;
    SimTime time = 0.0;
    std::uint32_t generation = 0;
    std::uint32_t next_free = 0;
    alignas(std::max_align_t) unsigned char payload[kMaxPayload];
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  CalendarQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace latol::sim
