// Discrete-event simulation kernel.
//
// A minimal event calendar: schedule closures at absolute times, run until
// a horizon. Ties fire in scheduling order (a stable sequence number keeps
// the heap deterministic), which makes whole simulations reproducible from
// their seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace latol::sim {

/// Simulation clock type (model time units, as in the paper).
using SimTime = double;

/// Event calendar + clock.
class Simulator {
 public:
  /// Schedule `action` at absolute time `t` (>= now).
  void schedule(SimTime t, std::function<void()> action);

  /// Schedule `action` after `delay` model time units.
  void schedule_after(SimTime delay, std::function<void()> action);

  /// Execute events in time order until the calendar is empty or the next
  /// event is later than `horizon`. The clock ends at min(horizon, last
  /// event time); events beyond the horizon stay scheduled.
  void run_until(SimTime horizon);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> calendar_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace latol::sim
