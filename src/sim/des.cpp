#include "sim/des.hpp"

#include "util/error.hpp"

namespace latol::sim {

void Simulator::schedule(SimTime t, std::function<void()> action) {
  LATOL_REQUIRE(t + 1e-12 >= now_,
                "cannot schedule in the past: " << t << " < " << now_);
  LATOL_REQUIRE(action != nullptr, "null event action");
  calendar_.push(Event{t, next_seq_++, std::move(action)});
}

void Simulator::schedule_after(SimTime delay, std::function<void()> action) {
  LATOL_REQUIRE(delay >= 0.0, "negative delay " << delay);
  schedule(now_ + delay, std::move(action));
}

void Simulator::run_until(SimTime horizon) {
  while (!calendar_.empty() && calendar_.top().time <= horizon) {
    // top() is const to protect heap order; moving out right before pop()
    // is safe and avoids copying the closure.
    Event ev = std::move(const_cast<Event&>(calendar_.top()));
    calendar_.pop();
    now_ = ev.time;
    ++executed_;
    ev.action();
  }
  if (now_ < horizon) now_ = horizon;
}

}  // namespace latol::sim
