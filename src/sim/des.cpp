#include "sim/des.hpp"

namespace latol::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ == kNoSlot) {
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }
  const std::uint32_t idx = free_head_;
  free_head_ = slots_[idx].next_free;
  return idx;
}

void Simulator::release_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.invoke = nullptr;
  ++s.generation;  // invalidate outstanding EventIds for this slot
  s.next_free = free_head_;
  free_head_ = idx;
}

bool Simulator::cancel(EventId id) {
  if (id.slot >= slots_.size()) return false;
  Slot& s = slots_[id.slot];
  if (s.generation != id.generation || s.invoke == nullptr) return false;
  const bool erased = queue_.erase(s.time, id.slot);
  LATOL_REQUIRE(erased, "pending event missing from calendar");
  release_slot(id.slot);
  return true;
}

void Simulator::run_until(SimTime horizon) {
  CalendarEntry e;
  alignas(std::max_align_t) unsigned char copy[kMaxPayload];
  while (queue_.pop_until(horizon, e)) {
    Slot& s = slots_[e.payload];
    const Invoke invoke = s.invoke;
    // Copy the closure out and recycle the slot before invoking: the
    // handler may schedule (growing the arena) or reuse the slot, and
    // must not run out of arena memory that can move under it.
    std::memcpy(copy, s.payload, kMaxPayload);
    now_ = s.time;
    release_slot(e.payload);
    ++executed_;
    invoke(copy);
  }
  if (now_ < horizon) now_ = horizon;
}

}  // namespace latol::sim
