// Stochastic timed Petri net model of the MMS (the paper's §8 validation
// vehicle).
//
// Net structure, per processing element i:
//
//   ready_i --(exec_i: exp(R))--> issue_i
//   issue_i --(route immediates, weights 1-p / p*q(i,dst))--> memory chains
//
// Memories and switches are shared single servers: each is modeled with a
// free-token place plus, per traversing chain, a wait place, an immediate
// "seize" (contending for the free token), and a timed "serve" transition
// that releases the token — so only one customer is ever in service and
// service times never race (a plain shared timed transition per chain
// would add rates instead of queueing them).
//
// A remote access from i to dst follows its canonical dimension-order
// path: outbound_i, one inbound switch per hop, memory_dst, outbound_dst,
// the inbound hops home, then the thread returns to ready_i. Half-ring
// ties use the +1 direction; by translation symmetry this leaves the
// aggregate per-switch load identical to the analytical 50/50 split.
//
// Measurements (Little's law over the net):
//   lambda    = firing rate of exec_i (averaged over i)
//   U_p       = lambda * R
//   lambda_net= lambda * p_remote (also: rate of remote route immediates)
//   L_obs     = mean tokens in memory wait+service places / (lambda * P)
//   S_obs     = mean tokens in switch wait+service places / one-way leg rate
#pragma once

#include <cstdint>
#include <vector>

#include "core/mms_config.hpp"
#include "sim/petri.hpp"
#include "sim/rng.hpp"

namespace latol::sim {

/// The constructed net plus the handles needed to extract MMS measures.
struct MmsPetriModel {
  StochasticPetriNet net;
  std::vector<TransitionId> exec;          ///< one per processor
  std::vector<TransitionId> remote_route;  ///< all remote routing immediates
  std::vector<PlaceId> memory_places;      ///< wait + in-service at memories
  std::vector<PlaceId> switch_places;      ///< wait + in-service at switches
  double p_remote = 0;
  int processors = 0;
};

/// Build the STPN for `config`. `memory_dist` selects exponential or
/// deterministic memory service (the paper's §8 sensitivity experiment);
/// processors and switches are always exponential.
///
/// Approximation note: multiported memories (and the pipelined-switch
/// token pools) allow cross-chain parallelism but each chain's serve
/// transition still fires one token at a time, so two customers of the
/// *same* (source, destination) chain serialize even when free servers
/// remain. With n_t threads spread over P-1 chains such collisions are
/// rare; the DES simulator models multi-server stations exactly and is
/// the precise comparator for memory_ports > 1.
[[nodiscard]] MmsPetriModel build_mms_petri(
    const core::MmsConfig& config,
    ServiceDistribution memory_dist = ServiceDistribution::kExponential);

/// Aggregate measures from one STPN run, comparable to MmsPerformance and
/// to the DES SimulationResult.
struct PetriMmsResult {
  double processor_utilization = 0;
  double access_rate = 0;
  double message_rate = 0;
  double network_latency = 0;  ///< S_obs via Little's law
  double memory_latency = 0;   ///< L_obs via Little's law
  std::uint64_t total_firings = 0;
  std::uint64_t tokens_moved = 0;  ///< tokens consumed + produced
  std::uint64_t queue_ops = 0;     ///< calendar-queue operations
  std::uint64_t rng_draws = 0;     ///< random variates consumed
  std::uint64_t seed = 0;      ///< RNG seed of this replication
};

/// Build, simulate for `sim_time` (discarding `warmup_fraction`), and
/// derive the measures.
[[nodiscard]] PetriMmsResult simulate_mms_petri(
    const core::MmsConfig& config, double sim_time, double warmup_fraction,
    std::uint64_t seed,
    ServiceDistribution memory_dist = ServiceDistribution::kExponential);

/// As simulate_mms_petri, but over an already-built model and its
/// compiled net — replications share one build + compile instead of
/// redoing both per seed. Results are identical to simulate_mms_petri for
/// the config that produced `model`.
[[nodiscard]] PetriMmsResult simulate_mms_petri_compiled(
    const MmsPetriModel& model, const CompiledPetriNet& compiled,
    const core::MmsConfig& config, double sim_time, double warmup_fraction,
    std::uint64_t seed);

}  // namespace latol::sim
