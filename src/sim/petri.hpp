// Generic stochastic timed Petri net (STPN) engine.
//
// The paper validates its analytical model "using the simulations of
// Stochastic Timed Petri Net (STPN) model for the MMS" (§8). This module
// provides the substrate: places, immediate/exponential/deterministic
// transitions with arc weights, race semantics with single-server firing
// and restart (resampling) memory policy, weighted random resolution of
// immediate conflicts, and time-averaged token statistics.
//
// Semantics notes:
//  - A timed transition owns one firing clock (single-server semantics):
//    when it becomes enabled a delay is sampled; if it becomes disabled
//    the clock is discarded; after firing, a new delay is sampled if it is
//    still enabled. For exponential delays this is indistinguishable from
//    age memory; deterministic transitions in the MMS nets are never
//    preempted, so restart policy is exact there too.
//  - Immediate transitions fire before any timed one, conflicts resolved
//    by weight (uniformly at random when weights are equal) — this makes
//    shared servers "random order" rather than FCFS, which has the same
//    stationary token counts for exponential service (BCMP insensitivity).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace latol::sim {

/// Index of a place in PetriNet's place vector.
using PlaceId = std::size_t;
/// Index of a transition in PetriNet's transition vector.
using TransitionId = std::size_t;

/// Transition delay family.
enum class TransitionTiming {
  kImmediate,      // fires in zero time, priority over timed transitions
  kExponential,    // delay ~ Exp(mean)
  kDeterministic,  // delay = mean
};

/// A stochastic timed Petri net: structure only, no dynamic state.
class StochasticPetriNet {
 public:
  /// Add a place with an initial marking.
  PlaceId add_place(std::string name, long initial_tokens = 0);

  /// Add a transition. `mean` is the mean delay (ignored for immediate);
  /// `weight` resolves conflicts among simultaneously enabled immediate
  /// transitions.
  TransitionId add_transition(std::string name, TransitionTiming timing,
                              double mean = 0.0, double weight = 1.0);

  /// Arc from place to transition (consumes `weight` tokens on firing).
  void add_input(TransitionId t, PlaceId p, long weight = 1);

  /// Arc from transition to place (produces `weight` tokens on firing).
  void add_output(TransitionId t, PlaceId p, long weight = 1);

  [[nodiscard]] std::size_t num_places() const { return places_.size(); }
  [[nodiscard]] std::size_t num_transitions() const {
    return transitions_.size();
  }
  [[nodiscard]] const std::string& place_name(PlaceId p) const;
  [[nodiscard]] const std::string& transition_name(TransitionId t) const;
  [[nodiscard]] long initial_tokens(PlaceId p) const;

  /// Throws InvalidArgument on structural problems (transition without
  /// inputs, nonpositive delays on timed transitions, ...).
  void validate() const;

 private:
  friend class PetriSimulator;

  struct Arc {
    PlaceId place;
    long weight;
  };
  struct Place {
    std::string name;
    long initial;
  };
  struct Transition {
    std::string name;
    TransitionTiming timing;
    double mean;
    double weight;
    std::vector<Arc> inputs;
    std::vector<Arc> outputs;
  };

  std::vector<Place> places_;
  std::vector<Transition> transitions_;
};

/// Post-warmup statistics of one simulation run.
struct PetriStats {
  std::vector<std::uint64_t> firings;   ///< per transition
  std::vector<double> firing_rate;      ///< firings / observed time
  std::vector<double> mean_tokens;      ///< time-averaged marking per place
  double observed_time = 0;             ///< horizon - warmup
  std::uint64_t total_firings = 0;      ///< including warmup
  std::uint64_t tokens_moved = 0;       ///< consumed + produced, incl. warmup
  std::uint64_t rng_draws = 0;          ///< random variates consumed
};

/// Token-game simulator over a StochasticPetriNet.
class PetriSimulator {
 public:
  PetriSimulator(const StochasticPetriNet& net, std::uint64_t seed);

  /// Run from time 0 to `horizon`, discarding statistics before `warmup`.
  [[nodiscard]] PetriStats run(double horizon, double warmup);

  /// Current marking of a place (valid after run()).
  [[nodiscard]] long tokens(PlaceId p) const { return marking_[p]; }

 private:
  [[nodiscard]] bool enabled(TransitionId t) const;
  void fire(TransitionId t, double now);
  void refresh_clock(TransitionId t, double now);
  /// Fire enabled immediate transitions until none remain.
  void drain_immediates(double now);

  const StochasticPetriNet& net_;
  Rng rng_;
  std::vector<long> marking_;
  std::vector<double> clock_;          // +inf when disabled / immediate
  std::vector<std::uint64_t> epoch_;   // invalidates stale heap entries
  std::vector<std::vector<TransitionId>> affected_;  // place -> transitions
  std::vector<TimeAverage> token_avg_;
  std::vector<std::uint64_t> firings_;
  std::uint64_t total_firings_ = 0;
  std::uint64_t tokens_moved_ = 0;

  // Frontier of immediate transitions that may have become enabled; keeps
  // drain_immediates() O(local changes) instead of O(all transitions).
  std::vector<TransitionId> immediate_pool_;
  std::vector<char> in_pool_;

  struct HeapEntry {
    double time;
    TransitionId t;
    std::uint64_t epoch;
  };
  std::vector<HeapEntry> heap_;  // binary min-heap with lazy invalidation
  void heap_push(HeapEntry e);
  [[nodiscard]] bool heap_pop(HeapEntry& out);
};

}  // namespace latol::sim
