// Generic stochastic timed Petri net (STPN) engine.
//
// The paper validates its analytical model "using the simulations of
// Stochastic Timed Petri Net (STPN) model for the MMS" (§8). This module
// provides the substrate: places, immediate/exponential/deterministic
// transitions with arc weights, race semantics with single-server firing
// and restart (resampling) memory policy, weighted random resolution of
// immediate conflicts, and time-averaged token statistics.
//
// Semantics notes:
//  - A timed transition owns one firing clock (single-server semantics):
//    when it becomes enabled a delay is sampled; if it becomes disabled
//    the clock is discarded; after firing, a new delay is sampled if it is
//    still enabled. For exponential delays this is indistinguishable from
//    age memory; deterministic transitions in the MMS nets are never
//    preempted, so restart policy is exact there too.
//  - Immediate transitions fire before any timed one, conflicts resolved
//    by weight (uniformly at random when weights are equal) — this makes
//    shared servers "random order" rather than FCFS, which has the same
//    stationary token counts for exponential service (BCMP insensitivity).
//
// Hot-path layout (DESIGN.md §13): the builder API below captures the net
// as pointer-rich structure; CompiledPetriNet flattens it into CSR index
// arrays (arc lists, place-to-consumer adjacency) so the token game is
// branch-light array walks, and armed transitions wait in a calendar
// queue (calendar_queue.hpp) with disarms as exact erases — no lazy
// invalidation, no stale entries. One compiled net is immutable and can
// be shared by any number of concurrent PetriSimulator replications.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/rng.hpp"

namespace latol::sim {

/// Index of a place in PetriNet's place vector.
using PlaceId = std::size_t;
/// Index of a transition in PetriNet's transition vector.
using TransitionId = std::size_t;

/// Transition delay family.
enum class TransitionTiming {
  kImmediate,      // fires in zero time, priority over timed transitions
  kExponential,    // delay ~ Exp(mean)
  kDeterministic,  // delay = mean
};

/// A stochastic timed Petri net: structure only, no dynamic state.
class StochasticPetriNet {
 public:
  /// Add a place with an initial marking.
  PlaceId add_place(std::string name, long initial_tokens = 0);

  /// Add a transition. `mean` is the mean delay (ignored for immediate);
  /// `weight` resolves conflicts among simultaneously enabled immediate
  /// transitions.
  TransitionId add_transition(std::string name, TransitionTiming timing,
                              double mean = 0.0, double weight = 1.0);

  /// Arc from place to transition (consumes `weight` tokens on firing).
  void add_input(TransitionId t, PlaceId p, long weight = 1);

  /// Arc from transition to place (produces `weight` tokens on firing).
  void add_output(TransitionId t, PlaceId p, long weight = 1);

  [[nodiscard]] std::size_t num_places() const { return places_.size(); }
  [[nodiscard]] std::size_t num_transitions() const {
    return transitions_.size();
  }
  [[nodiscard]] const std::string& place_name(PlaceId p) const;
  [[nodiscard]] const std::string& transition_name(TransitionId t) const;
  [[nodiscard]] long initial_tokens(PlaceId p) const;

  /// Throws InvalidArgument on structural problems (transition without
  /// inputs, nonpositive delays on timed transitions, ...).
  void validate() const;

 private:
  friend class CompiledPetriNet;

  struct Arc {
    PlaceId place;
    long weight;
  };
  struct Place {
    std::string name;
    long initial;
  };
  struct Transition {
    std::string name;
    TransitionTiming timing;
    double mean;
    double weight;
    std::vector<Arc> inputs;
    std::vector<Arc> outputs;
  };

  std::vector<Place> places_;
  std::vector<Transition> transitions_;
};

/// Immutable CSR encoding of a StochasticPetriNet: per-transition input
/// and output arc ranges, plus the place -> consuming-transitions
/// adjacency that firing uses to re-check enabledness. Compiling is done
/// once; the result is read-only and shareable across replications
/// running in parallel (each PetriSimulator keeps its own marking, RNG,
/// and calendar).
class CompiledPetriNet {
 public:
  /// Validate and flatten `net` (which may be discarded afterwards).
  explicit CompiledPetriNet(const StochasticPetriNet& net);

  [[nodiscard]] std::size_t num_places() const { return place_names_.size(); }
  [[nodiscard]] std::size_t num_transitions() const { return timing_.size(); }
  [[nodiscard]] const std::string& place_name(PlaceId p) const {
    return place_names_[p];
  }

 private:
  friend class PetriSimulator;

  std::vector<std::string> place_names_;
  std::vector<long> initial_;             // per place

  std::vector<TransitionTiming> timing_;  // per transition
  std::vector<double> mean_;
  std::vector<double> weight_;

  // Input arcs of transition t: indices [in_first_[t], in_first_[t+1]).
  std::vector<std::uint32_t> in_first_;
  std::vector<std::uint32_t> in_place_;
  std::vector<long> in_weight_;
  // Output arcs, same shape.
  std::vector<std::uint32_t> out_first_;
  std::vector<std::uint32_t> out_place_;
  std::vector<long> out_weight_;
  // Consumers of place p (one entry per input arc, ascending transition
  // order): indices [aff_first_[p], aff_first_[p+1]). aff_weight_ carries
  // the arc's weight so marking changes can maintain per-transition
  // enabledness deficits without re-reading the input arc lists.
  std::vector<std::uint32_t> aff_first_;
  std::vector<std::uint32_t> aff_tid_;
  std::vector<long> aff_weight_;
  // The same consumers split by timing class, for the post-firing touch
  // walk: timed consumers get clock refreshes (RNG draws), immediate
  // consumers get pooled. The two streams never interact, so keeping each
  // in ascending-transition order per place reproduces the combined
  // walk's draw and pool sequences exactly.
  std::vector<std::uint32_t> afft_first_;
  std::vector<std::uint32_t> afft_tid_;
  std::vector<std::uint32_t> affi_first_;
  std::vector<std::uint32_t> affi_tid_;
  // Largest input-arc weight drawn from place p: when a marking change
  // stays at or above this on both sides, no consumer's enabledness can
  // flip and the whole touch walk is skipped.
  std::vector<long> max_in_weight_;
};

/// Post-warmup statistics of one simulation run.
struct PetriStats {
  std::vector<std::uint64_t> firings;   ///< per transition
  std::vector<double> firing_rate;      ///< firings / observed time
  std::vector<double> mean_tokens;      ///< time-averaged marking per place
  double observed_time = 0;             ///< horizon - warmup
  std::uint64_t total_firings = 0;      ///< including warmup
  std::uint64_t tokens_moved = 0;       ///< consumed + produced, incl. warmup
  std::uint64_t queue_ops = 0;          ///< calendar-queue operations
  std::uint64_t rng_draws = 0;          ///< random variates consumed
};

/// Token-game simulator over a compiled net.
class PetriSimulator {
 public:
  /// Convenience: compile `net` privately and simulate it.
  PetriSimulator(const StochasticPetriNet& net, std::uint64_t seed);

  /// Simulate `net`, which must outlive the simulator; the compiled net
  /// is shared, so parallel replications pay for compilation once.
  PetriSimulator(const CompiledPetriNet& net, std::uint64_t seed);

  /// Run from time 0 to `horizon`, discarding statistics before `warmup`.
  [[nodiscard]] PetriStats run(double horizon, double warmup);

  /// Current marking of a place (valid after run()).
  [[nodiscard]] long tokens(PlaceId p) const { return marking_[p]; }

 private:
  /// Shared constructor body: initial marking, clocks, immediate pool.
  void init();
  /// Per-transition dynamic state, packed so the post-firing touch walk
  /// reads one cache line per transition instead of three scattered
  /// arrays (clock, enabledness deficit, pool membership).
  struct alignas(16) TransState {
    double clock;          // firing time; +inf when disarmed / immediate
    std::int32_t deficit;  // unsatisfied input arcs; enabled iff zero
    std::uint8_t in_pool;  // member of immediate_pool_?
  };

  /// O(1): a transition is enabled iff no input arc is short of tokens.
  /// The deficit is maintained incrementally by change_marking().
  [[nodiscard]] bool enabled(std::uint32_t t) const {
    return tstate_[t].deficit == 0;
  }
  /// Apply `delta` tokens to place p at `now`: integrates the token time
  /// average and adjusts the deficit of every consumer whose arc
  /// satisfaction flips. Returns true when at least one consumer's
  /// enabledness may have changed — the caller's cue to touch p's
  /// consumers after all markings settle.
  bool change_marking(std::uint32_t p, long delta, double now) {
    integrate_tokens(p, now);
    const long old_m = marking_[p];
    const long new_m = old_m + delta;
    if (new_m < 0) fail_negative_marking(p);
    marking_[p] = new_m;
    // No arc's satisfaction crosses while both sides sit at or above the
    // largest weight drawn from p (multi-token pools stay satisfied).
    if ((old_m < new_m ? old_m : new_m) >= net_.max_in_weight_[p])
      return false;
    const std::uint32_t* const aff_tid = net_.aff_tid_.data();
    const long* const aff_weight = net_.aff_weight_.data();
    bool changed = false;
    for (std::uint32_t c = net_.aff_first_[p]; c < net_.aff_first_[p + 1];
         ++c) {
      const long w = aff_weight[c];
      const int was = old_m >= w ? 0 : 1;
      const int is = new_m >= w ? 0 : 1;
      tstate_[aff_tid[c]].deficit += is - was;
      changed |= was != is;
    }
    return changed;
  }
  void fire(std::uint32_t t, double now);
  void refresh_clock(std::uint32_t t, double now);
  /// Fire enabled immediate transitions until none remain.
  void drain_immediates(double now);

  /// Integrate place p's token average up to `now` (call before changing
  /// its marking; matches TimeAverage::set arithmetic exactly).
  void integrate_tokens(std::uint32_t p, double now) {
    tok_weighted_[p] +=
        static_cast<double>(marking_[p]) * (now - tok_last_[p]);
    tok_last_[p] = now;
  }
  [[noreturn]] void fail_negative_marking(std::uint32_t p) const;

  std::unique_ptr<const CompiledPetriNet> owned_;  // legacy-ctor storage
  const CompiledPetriNet& net_;
  Rng rng_;
  std::vector<long> marking_;
  std::vector<TransState> tstate_;  // clock / deficit / pool flag, packed
  // Token time averages, structure-of-arrays (DESIGN.md §13): the
  // "current value" of place p's TimeAverage is marking_[p] itself, so a
  // marking change touches two doubles instead of a 4-field object.
  std::vector<double> tok_weighted_;  // integral of marking dt since reset
  std::vector<double> tok_last_;      // last marking-change time
  double tok_start_ = 0.0;            // statistics epoch (0 or warmup)
  std::vector<std::uint64_t> firings_;
  std::uint64_t total_firings_ = 0;
  std::uint64_t tokens_moved_ = 0;

  // Frontier of immediate transitions that may have become enabled; keeps
  // drain_immediates() O(local changes) instead of O(all transitions).
  std::vector<std::uint32_t> immediate_pool_;
  std::vector<char> touch_scratch_;  // per-arc flip flags, reused by fire()
  std::vector<std::uint32_t> ready_;  // reused per drain iteration
  std::vector<double> ready_weights_;

  CalendarQueue queue_;  // armed timed transitions, keyed by firing time
};

}  // namespace latol::sim
