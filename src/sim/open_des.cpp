#include "sim/open_des.hpp"

#include <chrono>
#include <memory>
#include <string>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "sim/des.hpp"
#include "sim/fcfs_server.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "util/error.hpp"

namespace latol::sim {

namespace {

/// Owns one open-network replication.
class OpenSimulation {
 public:
  OpenSimulation(const qn::OpenNetwork& net,
                 const OpenSimulationConfig& config)
      : net_(net), cfg_(config), rng_(config.seed) {
    LATOL_REQUIRE(net_.has_routing(),
                  "simulate_open needs set_entry/set_routing: visit ratios "
                  "alone do not describe where a job goes next");
    LATOL_REQUIRE(cfg_.sim_time > 0.0, "sim_time " << cfg_.sim_time);
    LATOL_REQUIRE(cfg_.warmup_fraction >= 0.0 && cfg_.warmup_fraction < 1.0,
                  "warmup_fraction " << cfg_.warmup_fraction);
    net_.validate();
    const std::size_t stations = net_.num_stations();
    servers_.reserve(stations);
    for (std::size_t m = 0; m < stations; ++m) {
      // The result exposes utilization and residence only; skip the
      // queue-length time average.
      servers_.push_back(std::make_unique<FcfsServer>(
          sim_, net_.station(m).name.empty() ? "S" + std::to_string(m)
                                             : net_.station(m).name,
          net_.station(m).servers,
          StatTracking::kBusy | StatTracking::kResidence));
    }
    const std::size_t classes = net_.num_classes();
    response_.assign(classes, BatchMeans(20));
    completions_.assign(classes, 0);
    // Per-class cumulative entry distribution for inverse-CDF sampling.
    entry_cum_.assign(classes, {});
    for (std::size_t c = 0; c < classes; ++c) {
      auto& cum = entry_cum_[c];
      cum.resize(stations);
      double acc = 0.0;
      for (std::size_t m = 0; m < stations; ++m) {
        acc += net_.entry(c, m);
        cum[m] = acc;
      }
    }
  }

  OpenSimulationResult run() {
    for (std::size_t c = 0; c < net_.num_classes(); ++c) {
      if (net_.arrival_rate(c) > 0.0) schedule_arrival(c);
    }
    const double warmup = cfg_.sim_time * cfg_.warmup_fraction;
    sim_.schedule(warmup, [this] { reset_statistics(); });
    sim_.run_until(cfg_.sim_time);
    return collect();
  }

 private:
  void schedule_arrival(std::size_t c) {
    sim_.schedule_after(rng_.exponential(1.0 / net_.arrival_rate(c)),
                        [this, c] {
                          const double t0 = sim_.now();
                          enter(c, sample_entry(c), t0);
                          schedule_arrival(c);
                        });
  }

  std::size_t sample_entry(std::size_t c) {
    const auto& cum = entry_cum_[c];
    const double u = rng_.uniform01() * cum.back();
    std::size_t m = 0;
    while (m + 1 < cum.size() && cum[m] <= u) ++m;
    return m;
  }

  void enter(std::size_t c, std::size_t m, double t0) {
    const double service = rng_.exponential(net_.service_time(c, m));
    if (net_.station(m).kind == qn::StationKind::kDelay) {
      sim_.schedule_after(service, [this, c, m, t0] { depart(c, m, t0); });
    } else {
      servers_[m]->submit(service, [this, c, m, t0] { depart(c, m, t0); });
    }
  }

  void depart(std::size_t c, std::size_t from, double t0) {
    // Walk the routing row; the deficit past the row sum is the sink.
    double u = rng_.uniform01();
    for (std::size_t to = 0; to < net_.num_stations(); ++to) {
      u -= net_.routing(c, from, to);
      if (u < 0.0) {
        enter(c, to, t0);
        return;
      }
    }
    if (sim_.now() >= stats_epoch_) {
      response_[c].add(sim_.now() - t0);
      ++completions_[c];
    }
  }

  void reset_statistics() {
    stats_epoch_ = sim_.now();
    for (auto& s : servers_) s->reset_stats();
    for (auto& r : response_) r = BatchMeans(20);
    for (auto& n : completions_) n = 0;
  }

  OpenSimulationResult collect() const {
    OpenSimulationResult r;
    const std::size_t classes = net_.num_classes();
    r.response_time.assign(classes, 0.0);
    r.response_hw95.assign(classes, 0.0);
    r.completions.assign(classes, 0);
    for (std::size_t c = 0; c < classes; ++c) {
      r.response_time[c] = response_[c].mean();
      r.response_hw95[c] = response_[c].half_width_95();
      r.completions[c] = completions_[c];
    }
    const std::size_t stations = net_.num_stations();
    r.utilization.assign(stations, 0.0);
    r.residence.assign(stations, 0.0);
    for (std::size_t m = 0; m < stations; ++m) {
      if (net_.station(m).kind != qn::StationKind::kQueueing) continue;
      r.utilization[m] = servers_[m]->utilization();
      r.residence[m] = servers_[m]->mean_residence();
    }
    r.events = sim_.events_executed();
    r.queue_ops = sim_.queue_ops();
    r.rng_draws = rng_.draws();
    return r;
  }

  const qn::OpenNetwork& net_;
  OpenSimulationConfig cfg_;
  Rng rng_;
  Simulator sim_;
  std::vector<std::unique_ptr<FcfsServer>> servers_;
  std::vector<std::vector<double>> entry_cum_;
  std::vector<BatchMeans> response_;
  std::vector<std::uint64_t> completions_;
  double stats_epoch_ = 0.0;
};

}  // namespace

OpenSimulationResult simulate_open(const qn::OpenNetwork& net,
                                   const OpenSimulationConfig& config) {
  try {
    obs::ScopedTimer timer("sim.open.run");
    obs::Span span("sim.open.run", "sim");
    span.arg("seed", static_cast<double>(config.seed));
    const auto t_run = std::chrono::steady_clock::now();
    OpenSimulation simulation(net, config);
    OpenSimulationResult result = simulation.run();
    obs::observe("sim.run.latency_seconds",
                 std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t_run)
                     .count());
    span.arg("events", static_cast<double>(result.events));
    result.seed = config.seed;
    obs::count("sim.open.runs");
    obs::count("sim.open.events", result.events);
    obs::count("sim.open.queue_ops", result.queue_ops);
    obs::count("sim.open.rng_draws", result.rng_draws);
    return result;
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(std::string(e.what()) + " [seed=" +
                          std::to_string(config.seed) + "]");
  }
}

}  // namespace latol::sim
