// Calendar queue: the simulators' pending-event set (DESIGN.md §13).
//
// A Brown-style calendar queue [R. Brown, CACM 1988]: one "year" of
// buckets, each `width` time units wide; an entry for time t hashes to
// bucket floor(t / width) mod nbuckets. With the width tuned so buckets
// hold O(1) entries, push, pop-min, and erase are all O(1) amortized —
// versus O(log n) per operation for the binary heaps this replaces — and
// pops walk the current year in address order, which is friendlier to the
// cache than heap sift-downs.
//
// Determinism contract: entries are totally ordered by (time, insertion
// sequence), exactly the tie-break the old `std::priority_queue` kernel
// used, so replacing the heap with this structure reorders nothing
// (DESIGN.md §10/§13). Equal times always land in the same bucket, where
// entries are kept sorted, so cross-bucket scanning can never invert a
// tie. The structure is single-threaded; parallelism in the simulators is
// one independent queue per replication.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace latol::sim {

/// One pending entry: an opaque 32-bit payload (event slot, transition
/// id, ...) keyed by simulated time with a stable insertion sequence.
struct CalendarEntry {
  double time = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t payload = 0;
};

/// Priority queue over CalendarEntry ordered by (time, seq); see the file
/// comment for the data structure and its determinism contract.
class CalendarQueue {
 public:
  CalendarQueue();

  /// Insert `payload` at `time`. Entries pushed with equal times pop in
  /// push order. `time` must be finite and >= the last popped time.
  void push(double time, std::uint32_t payload) {
    if (!(time >= 0.0 && time - time == 0.0)) check_finite(time);
    ++ops_;
    const std::size_t vb = bucket_of(time);
    std::vector<CalendarEntry>& bucket = buckets_[vb & mask_];
    const CalendarEntry e{time, next_seq_++, payload};
    // Fast path: most entries are later than everything in their bucket
    // (time advances monotonically within a year), so append directly.
    if (bucket.empty() || !entry_before(e, bucket.back())) {
      bucket.push_back(e);
    } else {
      insert_sorted(bucket, e);
    }
    ++size_;
    // Keep the scan invariant (no pending entry earlier than the cursor's
    // year): an entry landing behind the cursor pulls the cursor back.
    if (vb < cursor_) cursor_ = vb;
    if (size_ > grow_at_) resize(2 * (mask_ + 1));
  }

  /// Remove and return the minimum entry if its time is <= `limit`.
  /// Returns false (and removes nothing) when the queue is empty or the
  /// earliest entry lies beyond `limit`.
  bool pop_until(double limit, CalendarEntry& out) {
    if (size_ == 0) return false;
    // Fast path: the cursor's bucket front is the global minimum whenever
    // its virtual bucket matches (ties share a bucket, so order can never
    // invert).
    std::vector<CalendarEntry>& bucket = buckets_[cursor_ & mask_];
    if (!bucket.empty() && bucket_of(bucket.front().time) == cursor_) {
      if (bucket.front().time > limit) return false;
      out = bucket.front();
      bucket.erase(bucket.begin());
      --size_;
      ++ops_;
      if (size_ < shrink_at_) resize((mask_ + 1) / 2);
      return true;
    }
    return pop_scan(limit, out);
  }

  /// Remove the entry for `payload` scheduled at exactly `time` (the time
  /// it was pushed with). Returns true if found and removed.
  bool erase(double time, std::uint32_t payload) {
    std::vector<CalendarEntry>& bucket = buckets_[bucket_of(time) & mask_];
    for (auto it = bucket.begin(); it != bucket.end(); ++it) {
      if (it->payload == payload && it->time == time) {
        bucket.erase(it);
        --size_;
        ++ops_;
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Structure operations performed (pushes + pops + erases); feeds the
  /// sim.*.queue_ops metrics.
  [[nodiscard]] std::uint64_t ops() const { return ops_; }

 private:
  /// Virtual bucket (year * nbuckets + slot) for `time`; the physical
  /// bucket is the virtual index masked to the table size.
  [[nodiscard]] std::size_t bucket_of(double time) const {
    // Times are nonnegative in every simulator; clamp defensively so a
    // -1e-12 epsilon never turns into a huge unsigned virtual bucket.
    const double vb = time > 0.0 ? time * inv_width_ : 0.0;
    return static_cast<std::size_t>(static_cast<std::uint64_t>(vb));
  }
  /// Total order matching the old priority-queue kernel: earlier time
  /// first, earlier insertion first among ties.
  static bool entry_before(const CalendarEntry& a, const CalendarEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  static void insert_sorted(std::vector<CalendarEntry>& bucket,
                            CalendarEntry e);
  static void check_finite(double time);
  /// Slow path of pop_until: walk the year from the cursor, falling back
  /// to a full minimum seek when a whole year is empty.
  bool pop_scan(double limit, CalendarEntry& out);
  /// Point cursor_ at the virtual bucket of the minimum pending entry;
  /// pre: size_ > 0.
  void seek_min();
  void resize(std::size_t nbuckets);

  std::vector<std::vector<CalendarEntry>> buckets_;
  std::size_t mask_ = 0;         // buckets_.size() - 1 (power of two)
  double width_ = 1.0;           // bucket width in time units
  double inv_width_ = 1.0;       // 1 / width_, the hot-path factor
  std::size_t cursor_ = 0;       // virtual bucket being drained
  std::size_t size_ = 0;
  std::size_t grow_at_ = 0;      // resize up when size_ exceeds this
  std::size_t shrink_at_ = 0;    // resize down when size_ drops below this
  std::uint64_t next_seq_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace latol::sim
