#include "sim/mms_petri.hpp"

#include <chrono>
#include <memory>
#include <string>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "topo/topology.hpp"
#include "topo/traffic.hpp"
#include "util/error.hpp"

namespace latol::sim {

namespace {

/// Incremental builder: wires shared-server stages into chains.
class NetBuilder {
 public:
  explicit NetBuilder(const core::MmsConfig& config,
                      ServiceDistribution memory_dist)
      : cfg_(config),
        mem_dist_(memory_dist),
        topology_(topo::make_topology(config.topology, config.k)) {
    cfg_.validate();
    LATOL_REQUIRE(cfg_.open_arrival_rate == 0.0,
                  "the STPN simulator models only the closed thread cycle; "
                  "open arrivals (open_arrival_rate="
                      << cfg_.open_arrival_rate
                      << ") need the DES cross-check instead");
    const int P = topology_->num_nodes();
    model_.p_remote = cfg_.p_remote;
    model_.processors = P;
    mem_free_.reserve(static_cast<std::size_t>(P));
    in_free_.reserve(static_cast<std::size_t>(P));
    out_free_.reserve(static_cast<std::size_t>(P));
    ready_.reserve(static_cast<std::size_t>(P));
    // A multiported memory is the same seize/serve pattern with more
    // server tokens; pipelined switches get one token per thread in the
    // machine, which can never all contend, i.e. effectively no queueing.
    const int switch_tokens =
        cfg_.pipelined_switches ? P * cfg_.threads_per_processor : 1;
    for (int n = 0; n < P; ++n) {
      const std::string id = std::to_string(n);
      mem_free_.push_back(net().add_place("mfree" + id, cfg_.memory_ports));
      in_free_.push_back(net().add_place("ifree" + id, switch_tokens));
      out_free_.push_back(net().add_place("ofree" + id, switch_tokens));
      ready_.push_back(
          net().add_place("ready" + id, cfg_.threads_per_processor));
    }
  }

  MmsPetriModel build() {
    const int P = topology_->num_nodes();
    std::unique_ptr<topo::RemoteAccessDistribution> traffic;
    if (P >= 2)
      traffic = std::make_unique<topo::RemoteAccessDistribution>(
          *topology_, cfg_.traffic);

    for (int i = 0; i < P; ++i) {
      const std::string id = std::to_string(i);
      // Thread execution: ready -> exec -> issue.
      const PlaceId issue = net().add_place("issue" + id);
      const TransitionId exec = net().add_transition(
          "exec" + id, TransitionTiming::kExponential,
          cfg_.runlength + cfg_.context_switch);
      net().add_input(exec, ready_[static_cast<std::size_t>(i)]);
      net().add_output(exec, issue);
      model_.exec.push_back(exec);

      // Local access route.
      if (cfg_.p_remote < 1.0) {
        const PlaceId lwait = net().add_place("lmw" + id);
        const TransitionId route = net().add_transition(
            "rl" + id, TransitionTiming::kImmediate, 0.0,
            1.0 - cfg_.p_remote);
        net().add_input(route, issue);
        net().add_output(route, lwait);
        add_memory_stage(i, lwait, ready_[static_cast<std::size_t>(i)],
                         "lm" + id);
      }

      // Remote access routes, one chain per destination.
      if (cfg_.p_remote > 0.0) {
        for (int dst = 0; dst < P; ++dst) {
          if (dst == i) continue;
          const double q = traffic->probability(i, dst);
          if (q <= 0.0) continue;
          const PlaceId chain_start = net().add_place(
              "rw" + id + "_" + std::to_string(dst));
          const TransitionId route = net().add_transition(
              "rr" + id + "_" + std::to_string(dst),
              TransitionTiming::kImmediate, 0.0, cfg_.p_remote * q);
          net().add_input(route, issue);
          net().add_output(route, chain_start);
          model_.remote_route.push_back(route);
          build_remote_chain(i, dst, chain_start);
        }
      }
    }
    return std::move(model_);
  }

 private:
  StochasticPetriNet& net() { return model_.net; }

  /// wait -> [seize: immediate, takes `free`] -> in-service ->
  /// [serve: timed, releases `free`] -> next. Both customer-holding places
  /// are recorded in `census` for Little's-law measurements.
  void add_stage(PlaceId wait, PlaceId free, PlaceId next,
                 const std::string& tag, TransitionTiming timing, double mean,
                 std::vector<PlaceId>& census) {
    const PlaceId busy = net().add_place("s_" + tag);
    const TransitionId seize =
        net().add_transition("z_" + tag, TransitionTiming::kImmediate);
    net().add_input(seize, wait);
    net().add_input(seize, free);
    net().add_output(seize, busy);
    const TransitionId serve = net().add_transition("v_" + tag, timing, mean);
    net().add_input(serve, busy);
    net().add_output(serve, free);
    net().add_output(serve, next);
    census.push_back(wait);
    census.push_back(busy);
  }

  void add_memory_stage(int node, PlaceId wait, PlaceId next,
                        const std::string& tag) {
    const TransitionTiming timing =
        mem_dist_ == ServiceDistribution::kExponential
            ? TransitionTiming::kExponential
            : TransitionTiming::kDeterministic;
    add_stage(wait, mem_free_[static_cast<std::size_t>(node)], next, tag,
              timing, cfg_.memory_latency, model_.memory_places);
  }

  void add_switch_stage(PlaceId free, PlaceId wait, PlaceId next,
                        const std::string& tag) {
    add_stage(wait, free, next, tag, TransitionTiming::kExponential,
              cfg_.switch_delay, model_.switch_places);
  }

  /// Full round trip i -> dst -> i starting from `start` (already holding
  /// the message) and ending at ready_i.
  void build_remote_chain(int i, int dst, PlaceId start) {
    const std::string tag =
        std::to_string(i) + "_" + std::to_string(dst) + "_";
    PlaceId cursor = start;
    int stage = 0;
    auto next_place = [&] {
      return net().add_place("c" + tag + std::to_string(stage++));
    };

    // Request: out of node i, inbound hops to dst, then memory at dst.
    PlaceId after = next_place();
    add_switch_stage(out_free_[static_cast<std::size_t>(i)], cursor, after,
                     "o" + tag + std::to_string(stage));
    cursor = after;
    for (const int hop : topology_->route(i, dst)) {
      after = next_place();
      add_switch_stage(in_free_[static_cast<std::size_t>(hop)], cursor, after,
                       "i" + tag + std::to_string(stage));
      cursor = after;
    }
    after = next_place();
    add_memory_stage(dst, cursor, after, "m" + tag + std::to_string(stage));
    cursor = after;

    // Response: out of dst, inbound hops home, thread becomes ready.
    after = next_place();
    add_switch_stage(out_free_[static_cast<std::size_t>(dst)], cursor, after,
                     "p" + tag + std::to_string(stage));
    cursor = after;
    const auto back = topology_->route(dst, i);
    for (std::size_t h = 0; h < back.size(); ++h) {
      const PlaceId target = (h + 1 == back.size())
                                 ? ready_[static_cast<std::size_t>(i)]
                                 : next_place();
      add_switch_stage(in_free_[static_cast<std::size_t>(back[h])], cursor,
                       target, "j" + tag + std::to_string(stage++));
      cursor = target;
    }
    if (back.empty()) {
      // Can't happen (dst != i on a torus with >= 2 nodes) but keep the
      // chain well-formed if routing ever returns an empty path.
      const TransitionId hand =
          net().add_transition("h" + tag, TransitionTiming::kImmediate);
      net().add_input(hand, cursor);
      net().add_output(hand, ready_[static_cast<std::size_t>(i)]);
    }
  }

  core::MmsConfig cfg_;
  ServiceDistribution mem_dist_;
  std::unique_ptr<topo::Topology> topology_;
  MmsPetriModel model_;
  std::vector<PlaceId> mem_free_, in_free_, out_free_, ready_;
};

/// Simulate `compiled` and turn token statistics into MMS measures; the
/// common core of both public entry points (no seed tagging here).
PetriMmsResult run_compiled(const MmsPetriModel& model,
                            const CompiledPetriNet& compiled,
                            const core::MmsConfig& config, double sim_time,
                            double warmup_fraction, std::uint64_t seed) {
  LATOL_REQUIRE(sim_time > 0.0, "sim_time " << sim_time);
  LATOL_REQUIRE(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
                "warmup_fraction " << warmup_fraction);
  obs::ScopedTimer timer("sim.stpn.run");
  obs::Span span("sim.stpn.run", "sim");
  span.arg("seed", static_cast<double>(seed));
  const auto t_run = std::chrono::steady_clock::now();
  PetriSimulator sim(compiled, seed);
  const PetriStats stats = sim.run(sim_time, sim_time * warmup_fraction);
  obs::observe("sim.run.latency_seconds",
               std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t_run)
                   .count());
  span.arg("firings", static_cast<double>(stats.total_firings));

  PetriMmsResult out;
  out.seed = seed;
  out.total_firings = stats.total_firings;
  out.tokens_moved = stats.tokens_moved;
  out.queue_ops = stats.queue_ops;
  out.rng_draws = stats.rng_draws;
  const auto P = static_cast<double>(model.processors);
  double exec_rate = 0.0;
  for (const TransitionId t : model.exec) exec_rate += stats.firing_rate[t];
  out.access_rate = exec_rate / P;
  out.processor_utilization = out.access_rate * config.runlength;

  double remote_rate = 0.0;
  for (const TransitionId t : model.remote_route)
    remote_rate += stats.firing_rate[t];
  out.message_rate = remote_rate / P;

  double mem_tokens = 0.0;
  for (const PlaceId p : model.memory_places)
    mem_tokens += stats.mean_tokens[p];
  out.memory_latency = exec_rate > 0.0 ? mem_tokens / exec_rate : 0.0;

  double switch_tokens = 0.0;
  for (const PlaceId p : model.switch_places)
    switch_tokens += stats.mean_tokens[p];
  const double leg_rate = 2.0 * remote_rate;
  out.network_latency = leg_rate > 0.0 ? switch_tokens / leg_rate : 0.0;

  // Aggregate flush, once per replication (see mms_des.cpp).
  obs::count("sim.stpn.runs");
  obs::count("sim.stpn.firings", out.total_firings);
  obs::count("sim.stpn.tokens_moved", out.tokens_moved);
  obs::count("sim.stpn.queue_ops", out.queue_ops);
  obs::count("sim.stpn.rng_draws", out.rng_draws);
  return out;
}

}  // namespace

MmsPetriModel build_mms_petri(const core::MmsConfig& config,
                              ServiceDistribution memory_dist) {
  NetBuilder builder(config, memory_dist);
  return builder.build();
}

PetriMmsResult simulate_mms_petri(const core::MmsConfig& config,
                                  double sim_time, double warmup_fraction,
                                  std::uint64_t seed,
                                  ServiceDistribution memory_dist) {
  // Tag validation failures with the seed so the replication that exposed
  // them can be reproduced exactly.
  try {
    const MmsPetriModel model = build_mms_petri(config, memory_dist);
    const CompiledPetriNet compiled(model.net);
    return run_compiled(model, compiled, config, sim_time, warmup_fraction,
                        seed);
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(std::string(e.what()) + " [seed=" +
                          std::to_string(seed) + "]");
  }
}

PetriMmsResult simulate_mms_petri_compiled(const MmsPetriModel& model,
                                           const CompiledPetriNet& compiled,
                                           const core::MmsConfig& config,
                                           double sim_time,
                                           double warmup_fraction,
                                           std::uint64_t seed) {
  try {
    return run_compiled(model, compiled, config, sim_time, warmup_fraction,
                        seed);
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(std::string(e.what()) + " [seed=" +
                          std::to_string(seed) + "]");
  }
}

}  // namespace latol::sim
