#include "sim/mms_des.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "sim/des.hpp"
#include "sim/fcfs_server.hpp"
#include "sim/stats.hpp"
#include "topo/topology.hpp"
#include "topo/traffic.hpp"
#include "util/error.hpp"

namespace latol::sim {

namespace {

/// What a message does when it leaves the network (DESIGN.md §13): the
/// in-flight state machine that replaced the old nested-closure chains.
enum class LegKind : std::uint8_t {
  kRequest,   // closed request: access memory at dst, then a response leg
  kResponse,  // closed response: the issuing thread at dst restarts
  kOpen,      // open background request: access memory at dst, then sink
};

/// In-flight message state, one arena slot per network leg. Trivially
/// copyable: the route lives in the shared route cache, so events need
/// only carry the slot index.
struct Msg {
  double t0 = 0.0;              // leg start time (S_obs / open sojourn)
  std::uint32_t route_first = 0;  // first hop in the route cache
  std::uint16_t route_len = 0;
  std::uint16_t hop = 0;        // hops completed so far
  std::int32_t origin = 0;      // leg source node
  std::int32_t dst = 0;         // leg destination node
  LegKind kind = LegKind::kRequest;
  bool count_stats = true;      // closed legs feed S_obs; open legs don't
  std::uint32_t next_free = 0;
};

/// Owns the whole simulated machine for one replication.
class MmsSimulation {
 public:
  explicit MmsSimulation(const SimulationConfig& config)
      : cfg_(config), rng_(config.seed) {
    cfg_.mms.validate();
    LATOL_REQUIRE(cfg_.sim_time > 0.0, "sim_time " << cfg_.sim_time);
    LATOL_REQUIRE(cfg_.warmup_fraction >= 0.0 && cfg_.warmup_fraction < 1.0,
                  "warmup_fraction " << cfg_.warmup_fraction);
    topology_ = topo::make_topology(cfg_.mms.topology, cfg_.mms.k);
    const int P = topology_->num_nodes();
    if (P >= 2) {
      traffic_ = std::make_unique<topo::RemoteAccessDistribution>(
          *topology_, cfg_.mms.traffic);
      // Per-source cumulative destination distribution for O(log P)
      // sampling; works for any pattern, topology, and hotspot.
      cumulative_.resize(static_cast<std::size_t>(P));
      for (int src = 0; src < P; ++src) {
        auto& cum = cumulative_[static_cast<std::size_t>(src)];
        cum.resize(static_cast<std::size_t>(P));
        double acc = 0.0;
        for (int dst = 0; dst < P; ++dst) {
          acc += traffic_->probability(src, dst);
          cum[static_cast<std::size_t>(dst)] = acc;
        }
      }
      build_route_cache(P);
    }
    processors_.reserve(static_cast<std::size_t>(P));
    memories_.reserve(static_cast<std::size_t>(P));
    inbound_.reserve(static_cast<std::size_t>(P));
    outbound_.reserve(static_cast<std::size_t>(P));
    // Track only what collect() reads: processor utilization and memory
    // residence. Switch latency is measured end to end per message leg
    // (network_latency_), so switch servers keep no time averages at all.
    for (int n = 0; n < P; ++n) {
      const std::string id = std::to_string(n);
      processors_.push_back(std::make_unique<FcfsServer>(
          sim_, "P" + id, 1, StatTracking::kBusy));
      memories_.push_back(std::make_unique<FcfsServer>(
          sim_, "M" + id, cfg_.mms.memory_ports, StatTracking::kResidence));
      inbound_.push_back(std::make_unique<FcfsServer>(
          sim_, "I" + id, 1, StatTracking::kNone));
      outbound_.push_back(std::make_unique<FcfsServer>(
          sim_, "O" + id, 1, StatTracking::kNone));
    }
  }

  SimulationResult run() {
    const int P = topology_->num_nodes();
    for (int n = 0; n < P; ++n) {
      for (int t = 0; t < cfg_.mms.threads_per_processor; ++t)
        start_thread_cycle(n);
    }
    // Open background traffic: one Poisson stream of one-way remote
    // requests per node. Guarded so a closed-only config draws exactly
    // the same random variates as before this feature existed.
    if (cfg_.mms.open_arrival_rate > 0.0) {
      for (int n = 0; n < P; ++n) schedule_open_arrival(n);
    }
    const double warmup = cfg_.sim_time * cfg_.warmup_fraction;
    sim_.schedule(warmup, [this] { reset_statistics(); });
    sim_.run_until(cfg_.sim_time);
    return collect(warmup);
  }

 private:
  /// Dimension-order routes, one (tie_a, tie_b) variant per slot,
  /// flattened into one node array. A message then carries (offset, len)
  /// instead of an owning path vector, so routing a message allocates
  /// nothing and touches no virtual call. Slots are filled lazily on
  /// first use — route() consults no RNG, so laziness cannot perturb the
  /// random stream — because eager filling (P^2 * 4 virtual calls) costs
  /// more than a short simulation at paper sizes.
  void build_route_cache(int P) {
    const auto n = static_cast<std::size_t>(P);
    route_first_.assign(n * n * 4, kRouteUnfilled);
    route_len_.assign(n * n * 4, 0);
  }

  [[nodiscard]] std::size_t route_slot(int src, int dst, bool tie_a,
                                       bool tie_b) const {
    const auto n = static_cast<std::size_t>(topology_->num_nodes());
    return (static_cast<std::size_t>(src) * n +
            static_cast<std::size_t>(dst)) *
               4 +
           (tie_a ? 2u : 0u) + (tie_b ? 1u : 0u);
  }

  /// Fill `slot` from the topology; cold path of send_leg.
  void fill_route(std::size_t slot, int src, int dst, bool tie_a,
                  bool tie_b) {
    const std::vector<int> path = topology_->route(src, dst, tie_a, tie_b);
    route_first_[slot] = static_cast<std::uint32_t>(route_nodes_.size());
    route_len_[slot] = static_cast<std::uint16_t>(path.size());
    route_nodes_.insert(route_nodes_.end(), path.begin(), path.end());
  }

  std::uint32_t acquire_msg() {
    if (msg_free_ == kNoMsg) {
      msgs_.emplace_back();
      return static_cast<std::uint32_t>(msgs_.size() - 1);
    }
    const std::uint32_t m = msg_free_;
    msg_free_ = msgs_[m].next_free;
    return m;
  }

  void release_msg(std::uint32_t m) {
    msgs_[m].next_free = msg_free_;
    msg_free_ = m;
  }

  void start_thread_cycle(int home) {
    const double service = rng_.service(
        cfg_.runlength_dist,
        cfg_.mms.runlength + cfg_.mms.context_switch);
    processors_[static_cast<std::size_t>(home)]->submit(
        service, [this, home] { issue_access(home); });
  }

  void issue_access(int home) {
    if (!rng_.bernoulli(cfg_.mms.p_remote)) {
      memories_[static_cast<std::size_t>(home)]->submit(
          rng_.service(cfg_.memory_dist, cfg_.mms.memory_latency),
          [this, home] { finish_cycle(home); });
      return;
    }
    ++remote_issued_;
    const int dst = sample_destination(home);
    // Request leg: home outbound -> inbound hops -> dst memory.
    send_leg(home, dst, LegKind::kRequest, /*count_stats=*/true);
  }

  /// One switch traversal: a queueing server normally, or a pure delay
  /// when the machine has pipelined (wormhole-style) switches.
  void traverse_switch(FcfsServer& server, InlineFn done) {
    const double service =
        rng_.service(cfg_.switch_dist, cfg_.mms.switch_delay);
    if (cfg_.mms.pipelined_switches) {
      sim_.schedule_after(service, done);
    } else {
      server.submit(service, done);
    }
  }

  /// Route one message src -> dst through outbound[src] and the inbound
  /// switches along a sampled dimension-order path; `kind` selects what
  /// happens when the message leaves the last inbound switch at dst. Open
  /// background legs pass count_stats = false so S_obs stays a
  /// closed-traffic metric (open sojourns are tallied in open_latency_).
  void send_leg(int src, int dst, LegKind kind, bool count_stats) {
    const double t0 = sim_.now();
    // The old kernel drew both tie-breaks inside route()'s argument list;
    // GCC evaluates call arguments right to left, so the second listed
    // draw (tie_b) came out of the stream first. Preserved bit for bit.
    const bool tie_b = rng_.bernoulli(0.5);
    const bool tie_a = rng_.bernoulli(0.5);
    const std::uint32_t m = acquire_msg();
    Msg& msg = msgs_[m];
    const std::size_t slot = route_slot(src, dst, tie_a, tie_b);
    if (route_first_[slot] == kRouteUnfilled)
      fill_route(slot, src, dst, tie_a, tie_b);
    msg.t0 = t0;
    msg.route_first = route_first_[slot];
    msg.route_len = route_len_[slot];
    msg.hop = 0;
    msg.origin = src;
    msg.dst = dst;
    msg.kind = kind;
    msg.count_stats = count_stats;
    traverse_switch(*outbound_[static_cast<std::size_t>(src)],
                    [this, m] { advance_msg(m); });
  }

  /// A message finished one switch traversal: enter the next inbound
  /// switch on its route, or deliver it.
  void advance_msg(std::uint32_t m) {
    Msg& msg = msgs_[m];
    if (msg.hop >= msg.route_len) {
      if (msg.count_stats && sim_.now() >= stats_epoch_) {
        network_latency_.add(sim_.now() - msg.t0);
        ++remote_legs_;
      }
      const Msg done = msg;
      release_msg(m);  // before dispatch: the continuation may reuse it
      deliver(done);
      return;
    }
    const int node = route_nodes_[msg.route_first + msg.hop];
    ++msg.hop;
    traverse_switch(*inbound_[static_cast<std::size_t>(node)],
                    [this, m] { advance_msg(m); });
  }

  /// The message left the network at its destination: run its
  /// continuation.
  void deliver(const Msg& done) {
    switch (done.kind) {
      case LegKind::kRequest: {
        const int home = done.origin;
        const int dst = done.dst;
        memories_[static_cast<std::size_t>(dst)]->submit(
            rng_.service(cfg_.memory_dist, cfg_.mms.memory_latency),
            [this, home, dst] {
              // Response leg: dst outbound -> inbound hops -> home.
              send_leg(dst, home, LegKind::kResponse, /*count_stats=*/true);
            });
        return;
      }
      case LegKind::kResponse:
        finish_cycle(done.dst);
        return;
      case LegKind::kOpen: {
        const double t0 = done.t0;
        memories_[static_cast<std::size_t>(done.dst)]->submit(
            rng_.service(cfg_.memory_dist, cfg_.mms.memory_latency),
            [this, t0] {
              if (sim_.now() >= stats_epoch_) {
                open_latency_.add(sim_.now() - t0);
                ++open_completions_;
              }
            });
        return;
      }
    }
  }

  /// One background open request from `home`: Poisson inter-arrival, then
  /// outbound -> inbound hops -> remote memory -> sink (one-way; the
  /// analytical counterpart is the per-node open class in
  /// core::MmsModel's mixed solve).
  void schedule_open_arrival(int home) {
    sim_.schedule_after(
        rng_.exponential(1.0 / cfg_.mms.open_arrival_rate), [this, home] {
          const int dst = sample_destination(home);
          send_leg(home, dst, LegKind::kOpen, /*count_stats=*/false);
          schedule_open_arrival(home);
        });
  }

  void finish_cycle(int home) {
    if (sim_.now() >= stats_epoch_) ++cycles_;
    start_thread_cycle(home);
  }

  int sample_destination(int home) {
    const auto& cum = cumulative_[static_cast<std::size_t>(home)];
    const double u = rng_.uniform01() * cum.back();
    // upper_bound (first cum strictly above u) is the correct inverse-CDF
    // lookup: it can never land on a zero-probability destination (the
    // home node's cumulative step is flat), even for u == 0.
    const auto it = std::upper_bound(cum.begin(), cum.end(), u);
    auto dst = static_cast<int>(it - cum.begin());
    if (dst >= topology_->num_nodes()) dst = topology_->num_nodes() - 1;
    LATOL_REQUIRE(dst != home, "sampled the local node as remote target");
    return dst;
  }

  void reset_statistics() {
    stats_epoch_ = sim_.now();
    cycles_ = 0;
    remote_issued_ = 0;
    remote_legs_ = 0;
    open_completions_ = 0;
    network_latency_ = BatchMeans(20);
    open_latency_ = BatchMeans(20);
    for (auto& s : processors_) s->reset_stats();
    for (auto& s : memories_) s->reset_stats();
    for (auto& s : inbound_) s->reset_stats();
    for (auto& s : outbound_) s->reset_stats();
  }

  SimulationResult collect(double warmup) const {
    const auto P = static_cast<double>(topology_->num_nodes());
    const double span = sim_.now() - warmup;
    SimulationResult r;
    double busy = 0.0;
    for (const auto& s : processors_) busy += s->utilization();
    r.processor_utilization = busy / P;

    double mem_time = 0.0;
    std::uint64_t mem_count = 0;
    for (const auto& s : memories_) {
      mem_time += s->mean_residence() * static_cast<double>(s->completions());
      mem_count += s->completions();
    }
    r.memory_latency = mem_count > 0 ? mem_time / static_cast<double>(mem_count)
                                     : 0.0;
    r.access_rate = span > 0.0 ? static_cast<double>(cycles_) / span / P : 0.0;
    r.message_rate =
        span > 0.0 ? static_cast<double>(remote_issued_) / span / P : 0.0;
    r.network_latency = network_latency_.mean();
    r.network_latency_hw95 = network_latency_.half_width_95();
    r.open_latency = open_latency_.mean();
    r.open_latency_hw95 = open_latency_.half_width_95();
    r.open_completions = open_completions_;
    r.cycles = cycles_;
    r.remote_legs = remote_legs_;
    r.events = sim_.events_executed();
    r.queue_ops = sim_.queue_ops();
    r.latency_samples = network_latency_.count();
    r.rng_draws = rng_.draws();
    return r;
  }

  static constexpr std::uint32_t kNoMsg = 0xffffffffu;
  static constexpr std::uint32_t kRouteUnfilled = 0xffffffffu;

  SimulationConfig cfg_;
  Rng rng_;
  Simulator sim_;
  std::unique_ptr<topo::Topology> topology_;
  std::unique_ptr<topo::RemoteAccessDistribution> traffic_;
  std::vector<std::vector<double>> cumulative_;
  std::vector<std::uint32_t> route_first_;  // (src,dst,ties) -> route_nodes_
  std::vector<std::uint16_t> route_len_;    // hops per slot; 0 until filled
  std::vector<int> route_nodes_;            // all cached routes, flattened
  std::vector<Msg> msgs_;                   // in-flight message arena
  std::uint32_t msg_free_ = kNoMsg;
  std::vector<std::unique_ptr<FcfsServer>> processors_;
  std::vector<std::unique_ptr<FcfsServer>> memories_;
  std::vector<std::unique_ptr<FcfsServer>> inbound_;
  std::vector<std::unique_ptr<FcfsServer>> outbound_;

  double stats_epoch_ = 0.0;
  std::uint64_t cycles_ = 0;
  std::uint64_t remote_issued_ = 0;
  std::uint64_t remote_legs_ = 0;
  std::uint64_t open_completions_ = 0;
  BatchMeans network_latency_{20};
  BatchMeans open_latency_{20};
};

}  // namespace

SimulationResult simulate_mms(const SimulationConfig& config) {
  // Tag any validation or mid-run assertion failure with the seed so a
  // failing replication can be reproduced exactly.
  try {
    obs::ScopedTimer timer("sim.des.run");
    obs::Span span("sim.des.run", "sim");
    span.arg("seed", static_cast<double>(config.seed));
    const auto t_run = std::chrono::steady_clock::now();
    MmsSimulation simulation(config);
    SimulationResult result = simulation.run();
    obs::observe("sim.run.latency_seconds",
                 std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t_run)
                     .count());
    span.arg("events", static_cast<double>(result.events));
    result.seed = config.seed;
    // One aggregate flush per replication (never per event), so the
    // instrumented hot path stays identical with and without a registry.
    obs::count("sim.des.runs");
    obs::count("sim.des.events", result.events);
    obs::count("sim.des.queue_ops", result.queue_ops);
    obs::count("sim.des.cycles", result.cycles);
    obs::count("sim.des.latency_samples", result.latency_samples);
    obs::count("sim.des.rng_draws", result.rng_draws);
    return result;
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(std::string(e.what()) + " [seed=" +
                          std::to_string(config.seed) + "]");
  }
}

}  // namespace latol::sim
