#include "sim/mms_des.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "sim/des.hpp"
#include "sim/fcfs_server.hpp"
#include "sim/stats.hpp"
#include "topo/topology.hpp"
#include "topo/traffic.hpp"
#include "util/error.hpp"

namespace latol::sim {

namespace {

/// Owns the whole simulated machine for one replication.
class MmsSimulation {
 public:
  explicit MmsSimulation(const SimulationConfig& config)
      : cfg_(config), rng_(config.seed) {
    cfg_.mms.validate();
    LATOL_REQUIRE(cfg_.sim_time > 0.0, "sim_time " << cfg_.sim_time);
    LATOL_REQUIRE(cfg_.warmup_fraction >= 0.0 && cfg_.warmup_fraction < 1.0,
                  "warmup_fraction " << cfg_.warmup_fraction);
    topology_ = topo::make_topology(cfg_.mms.topology, cfg_.mms.k);
    const int P = topology_->num_nodes();
    if (P >= 2) {
      traffic_ = std::make_unique<topo::RemoteAccessDistribution>(
          *topology_, cfg_.mms.traffic);
      // Per-source cumulative destination distribution for O(log P)
      // sampling; works for any pattern, topology, and hotspot.
      cumulative_.resize(static_cast<std::size_t>(P));
      for (int src = 0; src < P; ++src) {
        auto& cum = cumulative_[static_cast<std::size_t>(src)];
        cum.resize(static_cast<std::size_t>(P));
        double acc = 0.0;
        for (int dst = 0; dst < P; ++dst) {
          acc += traffic_->probability(src, dst);
          cum[static_cast<std::size_t>(dst)] = acc;
        }
      }
    }
    processors_.reserve(static_cast<std::size_t>(P));
    memories_.reserve(static_cast<std::size_t>(P));
    inbound_.reserve(static_cast<std::size_t>(P));
    outbound_.reserve(static_cast<std::size_t>(P));
    for (int n = 0; n < P; ++n) {
      const std::string id = std::to_string(n);
      processors_.push_back(std::make_unique<FcfsServer>(sim_, "P" + id));
      memories_.push_back(std::make_unique<FcfsServer>(sim_, "M" + id,
                                                       cfg_.mms.memory_ports));
      inbound_.push_back(std::make_unique<FcfsServer>(sim_, "I" + id));
      outbound_.push_back(std::make_unique<FcfsServer>(sim_, "O" + id));
    }
  }

  SimulationResult run() {
    const int P = topology_->num_nodes();
    for (int n = 0; n < P; ++n) {
      for (int t = 0; t < cfg_.mms.threads_per_processor; ++t)
        start_thread_cycle(n);
    }
    // Open background traffic: one Poisson stream of one-way remote
    // requests per node. Guarded so a closed-only config draws exactly
    // the same random variates as before this feature existed.
    if (cfg_.mms.open_arrival_rate > 0.0) {
      for (int n = 0; n < P; ++n) schedule_open_arrival(n);
    }
    const double warmup = cfg_.sim_time * cfg_.warmup_fraction;
    sim_.schedule(warmup, [this] { reset_statistics(); });
    sim_.run_until(cfg_.sim_time);
    return collect(warmup);
  }

 private:
  void start_thread_cycle(int home) {
    const double service = rng_.service(
        cfg_.runlength_dist,
        cfg_.mms.runlength + cfg_.mms.context_switch);
    processors_[static_cast<std::size_t>(home)]->submit(
        service, [this, home] { issue_access(home); });
  }

  void issue_access(int home) {
    if (!rng_.bernoulli(cfg_.mms.p_remote)) {
      memories_[static_cast<std::size_t>(home)]->submit(
          rng_.service(cfg_.memory_dist, cfg_.mms.memory_latency),
          [this, home] { finish_cycle(home); });
      return;
    }
    ++remote_issued_;
    const int dst = sample_destination(home);
    // Request leg: home outbound -> inbound hops -> dst memory.
    send_leg(home, dst, [this, home, dst] {
      memories_[static_cast<std::size_t>(dst)]->submit(
          rng_.service(cfg_.memory_dist, cfg_.mms.memory_latency),
          [this, home, dst] {
            // Response leg: dst outbound -> inbound hops -> home.
            send_leg(dst, home, [this, home] { finish_cycle(home); });
          });
    });
  }

  /// One switch traversal: a queueing server normally, or a pure delay
  /// when the machine has pipelined (wormhole-style) switches.
  void traverse_switch(FcfsServer& server, std::function<void()> done) {
    const double service =
        rng_.service(cfg_.switch_dist, cfg_.mms.switch_delay);
    if (cfg_.mms.pipelined_switches) {
      sim_.schedule_after(service, std::move(done));
    } else {
      server.submit(service, std::move(done));
    }
  }

  /// Route one message src -> dst through outbound[src] and the inbound
  /// switches along a sampled dimension-order path; `on_arrive` fires when
  /// the message leaves the last inbound switch at dst. Open background
  /// legs pass count_stats = false so S_obs stays a closed-traffic metric
  /// (open sojourns are tallied separately in open_latency_).
  void send_leg(int src, int dst, std::function<void()> on_arrive,
                bool count_stats = true) {
    const double t0 = sim_.now();
    auto path = std::make_shared<std::vector<int>>(
        topology_->route(src, dst, rng_.bernoulli(0.5), rng_.bernoulli(0.5)));
    traverse_switch(*outbound_[static_cast<std::size_t>(src)],
                    [this, path, t0, count_stats,
                     on_arrive = std::move(on_arrive)]() mutable {
                      hop(path, 0, t0, count_stats, std::move(on_arrive));
                    });
  }

  void hop(std::shared_ptr<std::vector<int>> path, std::size_t index,
           double t0, bool count_stats, std::function<void()> on_arrive) {
    if (index >= path->size()) {
      if (count_stats && sim_.now() >= stats_epoch_) {
        network_latency_.add(sim_.now() - t0);
        ++remote_legs_;
      }
      on_arrive();
      return;
    }
    const int node = (*path)[index];
    traverse_switch(*inbound_[static_cast<std::size_t>(node)],
                    [this, path = std::move(path), index, t0, count_stats,
                     on_arrive = std::move(on_arrive)]() mutable {
                      hop(std::move(path), index + 1, t0, count_stats,
                          std::move(on_arrive));
                    });
  }

  /// One background open request from `home`: Poisson inter-arrival, then
  /// outbound -> inbound hops -> remote memory -> sink (one-way; the
  /// analytical counterpart is the per-node open class in
  /// core::MmsModel's mixed solve).
  void schedule_open_arrival(int home) {
    sim_.schedule_after(
        rng_.exponential(1.0 / cfg_.mms.open_arrival_rate), [this, home] {
          const double t0 = sim_.now();
          const int dst = sample_destination(home);
          send_leg(
              home, dst,
              [this, t0, dst] {
                memories_[static_cast<std::size_t>(dst)]->submit(
                    rng_.service(cfg_.memory_dist, cfg_.mms.memory_latency),
                    [this, t0] {
                      if (sim_.now() >= stats_epoch_) {
                        open_latency_.add(sim_.now() - t0);
                        ++open_completions_;
                      }
                    });
              },
              /*count_stats=*/false);
          schedule_open_arrival(home);
        });
  }

  void finish_cycle(int home) {
    if (sim_.now() >= stats_epoch_) ++cycles_;
    start_thread_cycle(home);
  }

  int sample_destination(int home) {
    const auto& cum = cumulative_[static_cast<std::size_t>(home)];
    const double u = rng_.uniform01() * cum.back();
    // upper_bound (first cum strictly above u) is the correct inverse-CDF
    // lookup: it can never land on a zero-probability destination (the
    // home node's cumulative step is flat), even for u == 0.
    const auto it = std::upper_bound(cum.begin(), cum.end(), u);
    auto dst = static_cast<int>(it - cum.begin());
    if (dst >= topology_->num_nodes()) dst = topology_->num_nodes() - 1;
    LATOL_REQUIRE(dst != home, "sampled the local node as remote target");
    return dst;
  }

  void reset_statistics() {
    stats_epoch_ = sim_.now();
    cycles_ = 0;
    remote_issued_ = 0;
    remote_legs_ = 0;
    open_completions_ = 0;
    network_latency_ = BatchMeans(20);
    open_latency_ = BatchMeans(20);
    for (auto& s : processors_) s->reset_stats();
    for (auto& s : memories_) s->reset_stats();
    for (auto& s : inbound_) s->reset_stats();
    for (auto& s : outbound_) s->reset_stats();
  }

  SimulationResult collect(double warmup) const {
    const auto P = static_cast<double>(topology_->num_nodes());
    const double span = sim_.now() - warmup;
    SimulationResult r;
    double busy = 0.0;
    for (const auto& s : processors_) busy += s->utilization();
    r.processor_utilization = busy / P;

    double mem_time = 0.0;
    std::uint64_t mem_count = 0;
    for (const auto& s : memories_) {
      mem_time += s->mean_residence() * static_cast<double>(s->completions());
      mem_count += s->completions();
    }
    r.memory_latency = mem_count > 0 ? mem_time / static_cast<double>(mem_count)
                                     : 0.0;
    r.access_rate = span > 0.0 ? static_cast<double>(cycles_) / span / P : 0.0;
    r.message_rate =
        span > 0.0 ? static_cast<double>(remote_issued_) / span / P : 0.0;
    r.network_latency = network_latency_.mean();
    r.network_latency_hw95 = network_latency_.half_width_95();
    r.open_latency = open_latency_.mean();
    r.open_latency_hw95 = open_latency_.half_width_95();
    r.open_completions = open_completions_;
    r.cycles = cycles_;
    r.remote_legs = remote_legs_;
    r.events = sim_.events_executed();
    r.latency_samples = network_latency_.count();
    r.rng_draws = rng_.draws();
    return r;
  }

  SimulationConfig cfg_;
  Rng rng_;
  Simulator sim_;
  std::unique_ptr<topo::Topology> topology_;
  std::unique_ptr<topo::RemoteAccessDistribution> traffic_;
  std::vector<std::vector<double>> cumulative_;
  std::vector<std::unique_ptr<FcfsServer>> processors_;
  std::vector<std::unique_ptr<FcfsServer>> memories_;
  std::vector<std::unique_ptr<FcfsServer>> inbound_;
  std::vector<std::unique_ptr<FcfsServer>> outbound_;

  double stats_epoch_ = 0.0;
  std::uint64_t cycles_ = 0;
  std::uint64_t remote_issued_ = 0;
  std::uint64_t remote_legs_ = 0;
  std::uint64_t open_completions_ = 0;
  BatchMeans network_latency_{20};
  BatchMeans open_latency_{20};
};

}  // namespace

SimulationResult simulate_mms(const SimulationConfig& config) {
  // Tag any validation or mid-run assertion failure with the seed so a
  // failing replication can be reproduced exactly.
  try {
    MmsSimulation simulation(config);
    SimulationResult result = simulation.run();
    result.seed = config.seed;
    // One aggregate flush per replication (never per event), so the
    // instrumented hot path stays identical with and without a registry.
    obs::count("sim.des.runs");
    obs::count("sim.des.events", result.events);
    obs::count("sim.des.cycles", result.cycles);
    obs::count("sim.des.latency_samples", result.latency_samples);
    obs::count("sim.des.rng_draws", result.rng_draws);
    return result;
  } catch (const InvalidArgument& e) {
    throw InvalidArgument(std::string(e.what()) + " [seed=" +
                          std::to_string(config.seed) + "]");
  }
}

}  // namespace latol::sim
