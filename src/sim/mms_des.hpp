// Direct discrete-event simulation of the MMS (validation substrate, §8).
//
// Simulates the machine the CQN abstracts: n_t threads per processor
// cycling through runlength -> (local | remote) memory access -> ready,
// with FCFS single servers for processors, memories, and inbound/outbound
// switches, dimension-order routing with random 50/50 half-ring
// tie-breaks, and exponential (or deterministic) service draws. The paper
// validates its analytical predictions against a stochastic timed Petri
// net simulation of exactly this system; we provide both this direct
// simulator and an STPN one (mms_petri.hpp) so the model is checked by two
// independent implementations.
#pragma once

#include <cstdint>

#include "core/mms_config.hpp"
#include "sim/rng.hpp"

namespace latol::sim {

/// Simulation run parameters.
struct SimulationConfig {
  core::MmsConfig mms{};
  double sim_time = 100000;      ///< horizon, model time units (paper: 100k)
  double warmup_fraction = 0.1;  ///< fraction of sim_time discarded
  std::uint64_t seed = 1;
  ServiceDistribution runlength_dist = ServiceDistribution::kExponential;
  ServiceDistribution memory_dist = ServiceDistribution::kExponential;
  ServiceDistribution switch_dist = ServiceDistribution::kExponential;
};

/// Point estimates (post-warmup) in the same units as MmsPerformance.
struct SimulationResult {
  double processor_utilization = 0;  ///< mean busy fraction over processors
  double access_rate = 0;            ///< memory accesses per time unit per PE
  double message_rate = 0;           ///< remote requests per time unit per PE
  double network_latency = 0;        ///< mean one-way network latency (S_obs)
  double network_latency_hw95 = 0;   ///< 95% CI half-width (batch means)
  double memory_latency = 0;         ///< mean memory residence (L_obs)
  /// Mean end-to-end sojourn of one background open request (outbound
  /// switch -> inbound hops -> remote memory); 0 when the config has no
  /// open arrivals. Cross-checks the mixed-network solver's open_latency.
  double open_latency = 0;
  double open_latency_hw95 = 0;      ///< 95% CI half-width (batch means)
  std::uint64_t open_completions = 0;///< open requests absorbed post-warmup
  std::uint64_t cycles = 0;          ///< completed thread cycles measured
  std::uint64_t remote_legs = 0;     ///< one-way network traversals measured
  std::uint64_t events = 0;          ///< kernel events executed
  std::uint64_t queue_ops = 0;       ///< calendar-queue operations performed
  std::uint64_t latency_samples = 0; ///< network-latency samples collected
  std::uint64_t rng_draws = 0;       ///< random variates consumed
  std::uint64_t seed = 0;            ///< RNG seed of this replication
};

/// Run one replication.
[[nodiscard]] SimulationResult simulate_mms(const SimulationConfig& config);

}  // namespace latol::sim
