// Discrete-event simulation of an open queueing network.
//
// The independent cross-check for the Jackson solver (qn/open/jackson.hpp),
// playing the role mms_des plays for the closed solvers: Poisson sources
// per class, FCFS multi-server stations (or pure delays), probabilistic
// routing walked job by job, and a sink that records end-to-end response
// times. Nothing here knows about product form — agreement with the
// analytical solution is evidence, not construction.
#pragma once

#include <cstdint>
#include <vector>

#include "qn/open/open_network.hpp"

namespace latol::sim {

/// Run parameters for one open-network replication.
struct OpenSimulationConfig {
  double sim_time = 100000;      ///< horizon, model time units
  double warmup_fraction = 0.1;  ///< fraction of sim_time discarded
  std::uint64_t seed = 1;
};

/// Post-warmup point estimates, shaped to compare against OpenSolution.
struct OpenSimulationResult {
  /// Per-class mean end-to-end response time (arrival to sink).
  std::vector<double> response_time;
  /// Per-class 95% CI half-width on the response time (batch means).
  std::vector<double> response_hw95;
  /// Per-class jobs that reached the sink after warmup.
  std::vector<std::uint64_t> completions;
  /// Per-station mean fraction of busy servers (0 for delay stations,
  /// which never queue and are simulated as pure delays).
  std::vector<double> utilization;
  /// Per-station mean residence (wait + service) per visit, all classes
  /// (0 for delay stations — their latency shows up only in the
  /// end-to-end response times).
  std::vector<double> residence;
  std::uint64_t events = 0;     ///< kernel events executed
  std::uint64_t queue_ops = 0;  ///< calendar-queue operations performed
  std::uint64_t rng_draws = 0;  ///< random variates consumed
  std::uint64_t seed = 0;       ///< RNG seed of this replication
};

/// Run one replication of `net`, which must carry an explicit routing
/// description (set_entry/set_routing — visit ratios alone do not say
/// where a job goes next). Service times are exponential. Throws
/// InvalidArgument on a routing-less or invalid network; unlike the
/// analytical solver it happily simulates an unstable network (queues
/// just grow), which is exactly what makes it an independent check.
[[nodiscard]] OpenSimulationResult simulate_open(
    const qn::OpenNetwork& net, const OpenSimulationConfig& config);

}  // namespace latol::sim
