// Unidirectional-distance ring (1-D torus): the simplest interconnect in
// the family, useful both as a degenerate test case and as the model of
// slotted-ring machines.
#pragma once

#include "topo/topology.hpp"

namespace latol::topo {

/// Ring of `nodes` nodes with bidirectional minimal routing; the
/// half-ring tie (even node counts) splits 50/50 like the torus.
class Ring final : public Topology {
 public:
  explicit Ring(int nodes);

  [[nodiscard]] std::string name() const override {
    return "ring(" + std::to_string(nodes_) + ")";
  }
  [[nodiscard]] int num_nodes() const override { return nodes_; }
  [[nodiscard]] int distance(int a, int b) const override;
  [[nodiscard]] int max_distance() const override { return nodes_ / 2; }
  [[nodiscard]] bool is_vertex_transitive() const override { return true; }
  [[nodiscard]] std::vector<std::pair<int, double>> inbound_visits(
      int src, int dst) const override;
  [[nodiscard]] std::vector<int> route(int src, int dst, bool tie_a,
                                       bool tie_b) const override;

 private:
  int nodes_;
};

}  // namespace latol::topo
