// 2-D mesh (no wraparound): the Intel Paragon-style interconnect. Unlike
// the torus it is not vertex transitive — corner nodes see longer average
// distances than center nodes — which is exactly what the topology
// ablation bench probes.
#pragma once

#include "topo/topology.hpp"

namespace latol::topo {

/// k x k mesh with dimension-order (X then Y) routing. Minimal routes are
/// unique, so the tie arguments of route() are ignored.
class Mesh2D final : public Topology {
 public:
  explicit Mesh2D(int side);

  [[nodiscard]] std::string name() const override {
    return "mesh2d(" + std::to_string(side_) + ")";
  }
  [[nodiscard]] int num_nodes() const override { return side_ * side_; }
  [[nodiscard]] int distance(int a, int b) const override;
  [[nodiscard]] int max_distance() const override {
    return 2 * (side_ - 1);
  }
  [[nodiscard]] bool is_vertex_transitive() const override {
    return side_ <= 2;  // a 1x1 or 2x2 mesh happens to be symmetric
  }
  [[nodiscard]] std::vector<std::pair<int, double>> inbound_visits(
      int src, int dst) const override;
  [[nodiscard]] std::vector<int> route(int src, int dst, bool tie_a,
                                       bool tie_b) const override;

  [[nodiscard]] int side() const { return side_; }

 private:
  [[nodiscard]] int x_of(int node) const { return node % side_; }
  [[nodiscard]] int y_of(int node) const { return node / side_; }

  int side_;
};

}  // namespace latol::topo
