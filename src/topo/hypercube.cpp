#include "topo/hypercube.hpp"

#include <bit>

#include "util/error.hpp"

namespace latol::topo {

Hypercube::Hypercube(int dimension) : dimension_(dimension) {
  LATOL_REQUIRE(dimension >= 0 && dimension <= 20,
                "hypercube dimension " << dimension);
}

int Hypercube::distance(int a, int b) const {
  LATOL_REQUIRE(a >= 0 && a < num_nodes() && b >= 0 && b < num_nodes(),
                "nodes " << a << ',' << b);
  return std::popcount(static_cast<unsigned>(a ^ b));
}

std::vector<int> Hypercube::route(int src, int dst, bool, bool) const {
  LATOL_REQUIRE(src >= 0 && src < num_nodes() && dst >= 0 &&
                    dst < num_nodes(),
                "nodes " << src << ',' << dst);
  std::vector<int> nodes;
  int at = src;
  for (int bit = 0; bit < dimension_; ++bit) {
    const int mask = 1 << bit;
    if ((at & mask) != (dst & mask)) {
      at ^= mask;
      nodes.push_back(at);
    }
  }
  return nodes;
}

std::vector<std::pair<int, double>> Hypercube::inbound_visits(
    int src, int dst) const {
  std::vector<std::pair<int, double>> visits;
  for (const int node : route(src, dst, true, true))
    visits.emplace_back(node, 1.0);
  return visits;
}

}  // namespace latol::topo
