// Remote-access traffic patterns over an interconnect (the paper's
// em_{i,j}).
//
// The paper studies two destination distributions for remote memory
// accesses:
//  - geometric with locality factor p_sw: the probability of touching a
//    module at distance h shrinks by p_sw per hop; small p_sw = strong
//    locality. The paper's d_avg formula (sum_h h p^h / sum_h p^h) assigns
//    p_sw^h/a to the *distance class* h — with equal weight for each of
//    the N_h modules in the class. (Weighting classes by N_h instead is
//    the kPerModule variant; it gives d_avg = 1.66 instead of the paper's
//    1.733 at k = 4, p_sw = 0.5, which is how we know kDistanceClass is
//    the paper's reading.)
//  - uniform over the P-1 remote modules.
//
// Distributions are tabulated per source node, so non-vertex-transitive
// topologies (2-D mesh) and the hotspot extension work uniformly.
#pragma once

#include <vector>

#include "topo/topology.hpp"
#include "util/matrix.hpp"

namespace latol::topo {

/// Destination distribution family for remote accesses.
enum class AccessPattern {
  kGeometric,
  kUniform,
};

/// Normalization convention for the geometric pattern (see file comment).
enum class GeometricMode {
  kDistanceClass,  // paper's convention: P(distance = h) proportional to p_sw^h
  kPerModule,      // P(module at distance h) proportional to p_sw^h
};

/// Parameters of a remote-access pattern.
///
/// The optional hotspot models shared data concentrated on one node (an
/// extension beyond the paper's SPMD symmetry): a fraction
/// `hotspot_fraction` of every other node's remote accesses is redirected
/// to `hotspot_node`, the rest follows the base pattern. The hotspot
/// node's own accesses follow the base pattern unchanged.
struct TrafficConfig {
  AccessPattern pattern = AccessPattern::kGeometric;
  double p_sw = 0.5;
  GeometricMode mode = GeometricMode::kDistanceClass;
  int hotspot_node = -1;          ///< -1 disables the hotspot
  double hotspot_fraction = 0.0;  ///< in [0, 1]
};

/// The per-destination probability distribution q(src -> dst) of a remote
/// access, plus derived quantities (d_avg).
class RemoteAccessDistribution {
 public:
  RemoteAccessDistribution(const Topology& topology,
                           const TrafficConfig& config);

  /// Probability that a remote access from `src` targets module `dst`.
  /// Zero when dst == src. Sums to 1 over all dst != src.
  [[nodiscard]] double probability(int src, int dst) const {
    return prob_(static_cast<std::size_t>(src),
                 static_cast<std::size_t>(dst));
  }

  /// P(distance class == h) of the *base* pattern as seen from node 0,
  /// h = 1..max_distance (index 0 unused = 0). Exact for every source on
  /// vertex-transitive topologies without a hotspot; use probability()
  /// for the general case.
  [[nodiscard]] const std::vector<double>& distance_class_probability() const {
    return class_prob_;
  }

  /// Average hops traveled by a remote access (the paper's d_avg), as the
  /// mean over all source nodes.
  [[nodiscard]] double average_distance() const { return d_avg_; }

  /// Average hops for remote accesses issued by one source node.
  [[nodiscard]] double average_distance_from(int src) const {
    return davg_from_[static_cast<std::size_t>(src)];
  }

  /// True when a hotspot redirection is active.
  [[nodiscard]] bool has_hotspot() const {
    return config_.hotspot_node >= 0 && config_.hotspot_fraction > 0.0;
  }

  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] const TrafficConfig& config() const { return config_; }

 private:
  const Topology& topology_;
  TrafficConfig config_;
  util::Matrix prob_;              // P x P destination probabilities
  std::vector<double> class_prob_; // base pattern by distance, from node 0
  std::vector<double> davg_from_;  // per-source average distance
  double d_avg_ = 0.0;
};

/// The paper's closed-form d_avg for the geometric distance-class pattern:
/// sum_h h p_sw^h / sum_h p_sw^h over h = 1..d_max. Matches
/// RemoteAccessDistribution::average_distance() on vertex-transitive
/// topologies and exists mainly so tests can pin the 1.733 constant
/// independently of the class above.
[[nodiscard]] double geometric_average_distance(int d_max, double p_sw);

}  // namespace latol::topo
