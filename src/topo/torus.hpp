// 2-D torus topology (the paper's interconnection network, Fig. 1).
//
// k x k nodes, each linked to four neighbours with wraparound. Messages
// use dimension-order (X then Y) minimal routing; when k is even and the
// offset along a dimension is exactly k/2 both directions are minimal and
// the route splits 50/50 between them, preserving network symmetry.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "topo/topology.hpp"

namespace latol::topo {

/// Immutable k x k torus with hop-distance and routing queries. Node ids
/// are row-major: node = y * k + x.
class Torus2D final : public Topology {
 public:
  /// Build a torus with `side` >= 1 nodes per dimension.
  explicit Torus2D(int side);

  [[nodiscard]] std::string name() const override {
    return "torus2d(" + std::to_string(side_) + ")";
  }
  [[nodiscard]] bool is_vertex_transitive() const override { return true; }
  [[nodiscard]] std::vector<int> route(int src, int dst, bool tie_a,
                                       bool tie_b) const override {
    return path(src, dst, tie_a, tie_b);
  }

  [[nodiscard]] int side() const { return side_; }
  [[nodiscard]] int num_nodes() const override { return side_ * side_; }

  [[nodiscard]] int x_of(int node) const;
  [[nodiscard]] int y_of(int node) const;
  [[nodiscard]] int node_at(int x, int y) const;

  /// Minimal hop distance between two nodes (sum of per-dimension ring
  /// distances).
  [[nodiscard]] int distance(int a, int b) const override;

  /// Largest distance between any pair: 2 * floor(side / 2).
  [[nodiscard]] int max_distance() const override;

  /// Number of nodes at each distance h = 0..max_distance() from any node
  /// (identical for every node by vertex transitivity).
  [[nodiscard]] const std::vector<int>& distance_profile() const {
    return distance_profile_;
  }

  /// Inbound-switch visits of a message routed src -> dst: for each node
  /// entered along the way (intermediate hops and the destination itself)
  /// the expected number of traversals, accounting for the 50/50 split on
  /// half-ring ties. Weights sum to distance(src, dst). Empty when
  /// src == dst.
  [[nodiscard]] std::vector<std::pair<int, double>> inbound_visits(
      int src, int dst) const override;

  /// One concrete dimension-order path src -> dst: the sequence of nodes
  /// entered (length = distance(src, dst), last element = dst). Half-ring
  /// ties are resolved by `x_tie_positive` / `y_tie_positive`, letting
  /// simulators either fix a canonical direction or flip a fair coin per
  /// message (which matches the analytical 50/50 split in expectation).
  [[nodiscard]] std::vector<int> path(int src, int dst,
                                      bool x_tie_positive = true,
                                      bool y_tie_positive = true) const;

 private:
  /// Minimal-direction steps along one ring: (step, weight) pairs.
  [[nodiscard]] std::vector<std::pair<int, double>> ring_directions(
      int from, int to) const;

  int side_;
  std::vector<int> distance_profile_;
};

}  // namespace latol::topo
