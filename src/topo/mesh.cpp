#include "topo/mesh.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace latol::topo {

Mesh2D::Mesh2D(int side) : side_(side) {
  LATOL_REQUIRE(side >= 1, "mesh side must be >= 1, got " << side);
}

int Mesh2D::distance(int a, int b) const {
  LATOL_REQUIRE(a >= 0 && a < num_nodes() && b >= 0 && b < num_nodes(),
                "nodes " << a << ',' << b);
  return std::abs(x_of(a) - x_of(b)) + std::abs(y_of(a) - y_of(b));
}

std::vector<int> Mesh2D::route(int src, int dst, bool, bool) const {
  LATOL_REQUIRE(src >= 0 && src < num_nodes() && dst >= 0 &&
                    dst < num_nodes(),
                "nodes " << src << ',' << dst);
  std::vector<int> nodes;
  int x = x_of(src), y = y_of(src);
  const int dx = x_of(dst), dy = y_of(dst);
  while (x != dx) {
    x += (dx > x) ? 1 : -1;
    nodes.push_back(y * side_ + x);
  }
  while (y != dy) {
    y += (dy > y) ? 1 : -1;
    nodes.push_back(y * side_ + x);
  }
  return nodes;
}

std::vector<std::pair<int, double>> Mesh2D::inbound_visits(int src,
                                                           int dst) const {
  std::vector<std::pair<int, double>> visits;
  for (const int node : route(src, dst, true, true))
    visits.emplace_back(node, 1.0);
  return visits;
}

}  // namespace latol::topo
