#include "topo/ring.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace latol::topo {

Ring::Ring(int nodes) : nodes_(nodes) {
  LATOL_REQUIRE(nodes >= 1, "ring needs >= 1 node, got " << nodes);
}

int Ring::distance(int a, int b) const {
  LATOL_REQUIRE(a >= 0 && a < nodes_ && b >= 0 && b < nodes_,
                "nodes " << a << ',' << b);
  const int d = std::abs(a - b);
  return std::min(d, nodes_ - d);
}

std::vector<int> Ring::route(int src, int dst, bool tie_a, bool) const {
  LATOL_REQUIRE(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_,
                "nodes " << src << ',' << dst);
  std::vector<int> nodes;
  if (src == dst) return nodes;
  const int forward = ((dst - src) % nodes_ + nodes_) % nodes_;
  const int backward = nodes_ - forward;
  int step;
  if (forward < backward) {
    step = +1;
  } else if (backward < forward) {
    step = -1;
  } else {
    step = tie_a ? +1 : -1;
  }
  int at = src;
  while (at != dst) {
    at = ((at + step) % nodes_ + nodes_) % nodes_;
    nodes.push_back(at);
  }
  return nodes;
}

std::vector<std::pair<int, double>> Ring::inbound_visits(int src,
                                                         int dst) const {
  std::vector<std::pair<int, double>> visits;
  if (src == dst) return visits;
  const int forward = ((dst - src) % nodes_ + nodes_) % nodes_;
  const int backward = nodes_ - forward;
  if (forward != backward) {
    for (const int node : route(src, dst, true, true))
      visits.emplace_back(node, 1.0);
    return visits;
  }
  for (const int node : route(src, dst, /*tie_a=*/true, true))
    visits.emplace_back(node, 0.5);
  for (const int node : route(src, dst, /*tie_a=*/false, true))
    visits.emplace_back(node, 0.5);
  return visits;
}

}  // namespace latol::topo
