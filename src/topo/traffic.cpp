#include "topo/traffic.hpp"

#include <cmath>

#include "util/error.hpp"

namespace latol::topo {

double geometric_average_distance(int d_max, double p_sw) {
  LATOL_REQUIRE(d_max >= 1, "d_max " << d_max);
  LATOL_REQUIRE(p_sw > 0.0 && p_sw <= 1.0, "p_sw " << p_sw);
  double num = 0.0, den = 0.0;
  double ph = 1.0;
  for (int h = 1; h <= d_max; ++h) {
    ph *= p_sw;
    num += static_cast<double>(h) * ph;
    den += ph;
  }
  return num / den;
}

RemoteAccessDistribution::RemoteAccessDistribution(const Topology& topology,
                                                   const TrafficConfig& config)
    : topology_(topology), config_(config) {
  const int P = topology.num_nodes();
  LATOL_REQUIRE(P >= 2, "remote accesses need at least two nodes");
  if (config.pattern == AccessPattern::kGeometric) {
    LATOL_REQUIRE(config.p_sw > 0.0 && config.p_sw <= 1.0,
                  "p_sw " << config.p_sw);
  }
  if (config.hotspot_node >= 0 || config.hotspot_fraction != 0.0) {
    LATOL_REQUIRE(config.hotspot_node >= 0 && config.hotspot_node < P,
                  "hotspot node " << config.hotspot_node);
    LATOL_REQUIRE(
        config.hotspot_fraction >= 0.0 && config.hotspot_fraction <= 1.0,
        "hotspot_fraction " << config.hotspot_fraction);
  }

  prob_ = util::Matrix(static_cast<std::size_t>(P),
                       static_cast<std::size_t>(P), 0.0);
  davg_from_.assign(static_cast<std::size_t>(P), 0.0);
  class_prob_.assign(static_cast<std::size_t>(topology.max_distance()) + 1,
                     0.0);

  for (int src = 0; src < P; ++src) {
    const auto s = static_cast<std::size_t>(src);
    const std::vector<int> profile = topology.distance_profile_from(src);

    // Base (pattern) weights, then per-source normalization.
    double total = 0.0;
    for (int dst = 0; dst < P; ++dst) {
      if (dst == src) continue;
      const int h = topology.distance(src, dst);
      double w = 0.0;
      switch (config.pattern) {
        case AccessPattern::kUniform:
          w = 1.0;
          break;
        case AccessPattern::kGeometric:
          if (config.mode == GeometricMode::kPerModule) {
            w = std::pow(config.p_sw, h);
          } else {
            // Distance-class convention: the class carries p_sw^h, shared
            // equally by the N_h(src) modules in it.
            w = std::pow(config.p_sw, h) /
                static_cast<double>(profile[static_cast<std::size_t>(h)]);
          }
          break;
      }
      prob_(s, static_cast<std::size_t>(dst)) = w;
      total += w;
    }
    LATOL_REQUIRE(total > 0.0, "no reachable destinations from " << src);
    for (int dst = 0; dst < P; ++dst)
      prob_(s, static_cast<std::size_t>(dst)) /= total;

    // Record the base distance-class distribution from node 0 before any
    // hotspot redistribution (API compatibility + DES sanity checks).
    if (src == 0) {
      for (int dst = 0; dst < P; ++dst) {
        if (dst == 0) continue;
        class_prob_[static_cast<std::size_t>(topology.distance(0, dst))] +=
            prob_(0, static_cast<std::size_t>(dst));
      }
    }

    // Hotspot redirection on top of the base pattern.
    if (has_hotspot() && src != config.hotspot_node) {
      const double f = config.hotspot_fraction;
      for (int dst = 0; dst < P; ++dst)
        prob_(s, static_cast<std::size_t>(dst)) *= (1.0 - f);
      prob_(s, static_cast<std::size_t>(config.hotspot_node)) += f;
    }

    for (int dst = 0; dst < P; ++dst) {
      davg_from_[s] += prob_(s, static_cast<std::size_t>(dst)) *
                       topology.distance(src, dst);
    }
    d_avg_ += davg_from_[s];
  }
  d_avg_ /= static_cast<double>(P);
}

}  // namespace latol::topo
