// Abstract interconnection topology.
//
// The paper analyzes a 2-D torus, but nothing in the framework depends on
// that choice: the CQN only needs hop distances and the inbound-switch
// visits of routed messages. This interface lets the same model run on
// the interconnects of the paper's era — 2-D torus (Cray T3D), 2-D mesh
// (Intel Paragon), ring, and hypercube (nCUBE) — and lets benches compare
// how topology changes latency tolerance.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace latol::topo {

/// A static point-to-point interconnect with deterministic minimal
/// routing (ties, where they exist, split evenly in expectation).
class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual int num_nodes() const = 0;

  /// Minimal hop distance between two nodes.
  [[nodiscard]] virtual int distance(int a, int b) const = 0;

  /// Largest distance between any pair of nodes.
  [[nodiscard]] virtual int max_distance() const = 0;

  /// Expected inbound-switch traversals of a message src -> dst: (node,
  /// weight) pairs over nodes entered (intermediates + destination);
  /// weights sum to distance(src, dst). Empty when src == dst.
  [[nodiscard]] virtual std::vector<std::pair<int, double>> inbound_visits(
      int src, int dst) const = 0;

  /// One concrete minimal route src -> dst (sequence of nodes entered).
  /// `tie_a` / `tie_b` select directions where the routing has binary
  /// ties; topologies without ties ignore them.
  [[nodiscard]] virtual std::vector<int> route(int src, int dst,
                                               bool tie_a = true,
                                               bool tie_b = true) const = 0;

  /// True when every node sees the same distance profile (torus, ring,
  /// hypercube); false for e.g. a mesh, whose corners differ from its
  /// center. Affects how traffic distributions are tabulated.
  [[nodiscard]] virtual bool is_vertex_transitive() const = 0;

  /// Nodes at distance h from `from`.
  [[nodiscard]] std::vector<int> nodes_at_distance(int from, int h) const;

  /// Distance histogram as seen from `from` (index = distance).
  [[nodiscard]] std::vector<int> distance_profile_from(int from) const;
};

/// Supported topology families.
enum class TopologyKind {
  kTorus2D,    // the paper's machine
  kMesh2D,     // no wraparound links
  kRing,       // 1-D torus
  kHypercube,  // side is log2(nodes)
};

/// Human-readable name of `kind` ("torus", "mesh", ...).
[[nodiscard]] const char* topology_kind_name(TopologyKind kind);

/// Factory: build a topology of `kind` with `side` nodes per dimension
/// (ring: side = node count; hypercube: side = dimension, 2^side nodes).
[[nodiscard]] std::unique_ptr<Topology> make_topology(TopologyKind kind,
                                                      int side);

}  // namespace latol::topo
