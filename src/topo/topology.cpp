#include "topo/topology.hpp"

#include "topo/hypercube.hpp"
#include "topo/mesh.hpp"
#include "topo/ring.hpp"
#include "topo/torus.hpp"
#include "util/error.hpp"

namespace latol::topo {

std::vector<int> Topology::nodes_at_distance(int from, int h) const {
  std::vector<int> out;
  for (int n = 0; n < num_nodes(); ++n)
    if (distance(from, n) == h) out.push_back(n);
  return out;
}

std::vector<int> Topology::distance_profile_from(int from) const {
  std::vector<int> profile(static_cast<std::size_t>(max_distance()) + 1, 0);
  for (int n = 0; n < num_nodes(); ++n)
    ++profile[static_cast<std::size_t>(distance(from, n))];
  return profile;
}

const char* topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kTorus2D:
      return "torus2d";
    case TopologyKind::kMesh2D:
      return "mesh2d";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kHypercube:
      return "hypercube";
  }
  return "?";
}

std::unique_ptr<Topology> make_topology(TopologyKind kind, int side) {
  switch (kind) {
    case TopologyKind::kTorus2D:
      return std::make_unique<Torus2D>(side);
    case TopologyKind::kMesh2D:
      return std::make_unique<Mesh2D>(side);
    case TopologyKind::kRing:
      return std::make_unique<Ring>(side);
    case TopologyKind::kHypercube:
      return std::make_unique<Hypercube>(side);
  }
  LATOL_REQUIRE(false, "unknown topology kind");
  return nullptr;  // unreachable
}

}  // namespace latol::topo
