#include "topo/torus.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace latol::topo {

namespace {

/// Ring distance between positions a and b on a ring of size k.
int ring_distance(int a, int b, int k) {
  const int d = std::abs(a - b);
  return std::min(d, k - d);
}

}  // namespace

Torus2D::Torus2D(int side) : side_(side) {
  LATOL_REQUIRE(side >= 1, "torus side must be >= 1, got " << side);
  distance_profile_.assign(static_cast<std::size_t>(max_distance()) + 1, 0);
  for (int n = 0; n < num_nodes(); ++n)
    ++distance_profile_[static_cast<std::size_t>(distance(0, n))];
}

int Torus2D::x_of(int node) const {
  LATOL_REQUIRE(node >= 0 && node < num_nodes(), "node " << node);
  return node % side_;
}

int Torus2D::y_of(int node) const {
  LATOL_REQUIRE(node >= 0 && node < num_nodes(), "node " << node);
  return node / side_;
}

int Torus2D::node_at(int x, int y) const {
  LATOL_REQUIRE(x >= 0 && x < side_ && y >= 0 && y < side_,
                "coordinates (" << x << ',' << y << ") outside " << side_
                                << 'x' << side_);
  return y * side_ + x;
}

int Torus2D::distance(int a, int b) const {
  return ring_distance(x_of(a), x_of(b), side_) +
         ring_distance(y_of(a), y_of(b), side_);
}

int Torus2D::max_distance() const { return 2 * (side_ / 2); }

std::vector<std::pair<int, double>> Torus2D::ring_directions(int from,
                                                             int to) const {
  if (from == to) return {};
  const int forward = ((to - from) % side_ + side_) % side_;
  const int backward = side_ - forward;
  if (forward < backward) return {{+1, 1.0}};
  if (backward < forward) return {{-1, 1.0}};
  return {{+1, 0.5}, {-1, 0.5}};  // half-ring tie: split both ways
}

std::vector<std::pair<int, double>> Torus2D::inbound_visits(int src,
                                                            int dst) const {
  std::vector<std::pair<int, double>> visits;
  if (src == dst) return visits;
  const int sx = x_of(src), sy = y_of(src);
  const int dx = x_of(dst), dy = y_of(dst);
  const auto x_dirs = ring_directions(sx, dx);
  const auto y_dirs = ring_directions(sy, dy);

  auto walk = [&](int x_step, int y_step, double weight) {
    int x = sx, y = sy;
    while (x != dx) {
      x = ((x + x_step) % side_ + side_) % side_;
      visits.emplace_back(node_at(x, y), weight);
    }
    while (y != dy) {
      y = ((y + y_step) % side_ + side_) % side_;
      visits.emplace_back(node_at(x, y), weight);
    }
  };

  if (x_dirs.empty()) {
    for (const auto& [ys, yw] : y_dirs) walk(0, ys, yw);
  } else if (y_dirs.empty()) {
    for (const auto& [xs, xw] : x_dirs) walk(xs, 0, xw);
  } else {
    for (const auto& [xs, xw] : x_dirs)
      for (const auto& [ys, yw] : y_dirs) walk(xs, ys, xw * yw);
  }
  return visits;
}

std::vector<int> Torus2D::path(int src, int dst, bool x_tie_positive,
                               bool y_tie_positive) const {
  std::vector<int> nodes;
  if (src == dst) return nodes;
  const int sx = x_of(src), sy = y_of(src);
  const int dx = x_of(dst), dy = y_of(dst);

  auto direction = [&](int from, int to, bool tie_positive) {
    if (from == to) return 0;
    const int forward = ((to - from) % side_ + side_) % side_;
    const int backward = side_ - forward;
    if (forward < backward) return +1;
    if (backward < forward) return -1;
    return tie_positive ? +1 : -1;
  };

  int x = sx, y = sy;
  const int x_step = direction(sx, dx, x_tie_positive);
  while (x != dx) {
    x = ((x + x_step) % side_ + side_) % side_;
    nodes.push_back(node_at(x, y));
  }
  const int y_step = direction(sy, dy, y_tie_positive);
  while (y != dy) {
    y = ((y + y_step) % side_ + side_) % side_;
    nodes.push_back(node_at(x, y));
  }
  return nodes;
}

}  // namespace latol::topo
