// Binary hypercube (nCUBE/CM-style): 2^d nodes, e-cube minimal routing.
#pragma once

#include "topo/topology.hpp"

namespace latol::topo {

/// d-dimensional hypercube with e-cube routing (correct address bits from
/// least to most significant). Minimal routes are unique under e-cube, so
/// the tie arguments are ignored.
class Hypercube final : public Topology {
 public:
  /// `dimension` in [0, 20]; the machine has 2^dimension nodes.
  explicit Hypercube(int dimension);

  [[nodiscard]] std::string name() const override {
    return "hypercube(" + std::to_string(dimension_) + ")";
  }
  [[nodiscard]] int num_nodes() const override { return 1 << dimension_; }
  [[nodiscard]] int distance(int a, int b) const override;
  [[nodiscard]] int max_distance() const override { return dimension_; }
  [[nodiscard]] bool is_vertex_transitive() const override { return true; }
  [[nodiscard]] std::vector<std::pair<int, double>> inbound_visits(
      int src, int dst) const override;
  [[nodiscard]] std::vector<int> route(int src, int dst, bool tie_a,
                                       bool tie_b) const override;

  [[nodiscard]] int dimension() const { return dimension_; }

 private:
  int dimension_;
};

}  // namespace latol::topo
